// Network: a sequential container of layers that is itself a Layer.
//
// It owns the inter-layer activations so the usual (x, y, dy) backward
// contract works for arbitrarily deep stacks, and it can therefore be nested
// (residual blocks hold Networks for their branches).
//
// Under an ExecutionPlan (nn/plan.hpp) the inter-layer activations and
// backward gradients live in the plan's arena instead of the acts_/dacts_
// members: plan_forward/plan_backward register them with liveness
// intervals, and do_forward/do_backward bind layer I/O to the arena slices
// when the incoming PlanContext carries a matching plan epoch. Contexts
// from a different (or rebuilt) plan are rejected and execution falls back
// to the legacy allocate-per-call path, which stays bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.hpp"
#include "nn/plan.hpp"

namespace minsgd::nn {

/// Sequential layer container with owned activation storage.
class Network final : public Layer {
 public:
  Network() = default;
  explicit Network(std::string label) : label_(std::move(label)) {}

  /// Appends a layer; returns a reference for chaining.
  Network& add(LayerPtr layer);

  /// Emplace-style helper: net.emplace<Conv2d>(3, 64, 7, 2, 3).
  template <typename L, typename... Args>
  Network& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  // Layer interface -----------------------------------------------------
  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::vector<ParamRef> params() override;
  std::vector<BufferRef> buffers() override;
  std::vector<Rng*> rng_streams() override;
  void init(Rng& rng) override;
  std::int64_t flops(const Shape& input) const override;

  Shape plan_forward(PlanBuilder& builder, const Shape& input) override;
  void plan_backward(PlanBuilder& builder, const Shape& input) override;

  /// Whether the first layer's backward reads x's data; the network itself
  /// only routes x through.
  bool backward_reads_input() const override;
  /// do_backward never reads the caller-held y's data — it keeps its own
  /// copy of the final activation (legacy) or an arena slice (planned).
  bool backward_reads_output() const override { return false; }

  // Whole-network conveniences ------------------------------------------
  /// Total learnable parameter count.
  std::int64_t num_params();

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Copies all parameter values into a single flat vector (and back).
  /// The flat layout is the order params() returns; it is the unit the
  /// data-parallel trainer allreduces. The _into variants resize the given
  /// vector (reusing its capacity) instead of building a fresh one — the
  /// per-iteration allreduce path hoists one vector and calls them.
  std::vector<float> flatten_params();
  void flatten_params_into(std::vector<float>& flat);
  void unflatten_params(std::span<const float> flat);
  std::vector<float> flatten_grads();
  void flatten_grads_into(std::vector<float>& flat);
  void unflatten_grads(std::span<const float> flat);

  /// Total float count of the flat parameter/gradient layout (cached).
  std::int64_t flat_size();

  // Gradient-ready observation -------------------------------------------
  /// Hook fired during backward() immediately after layers_[i]->backward()
  /// returns — the point at which layer i's parameter gradients are final
  /// for this pass (parameters are not shared between layers, so no later
  /// backward call touches them).
  ///
  /// Ordering guarantees the comm-overlap machinery relies on:
  ///   * fires output→input (layer index strictly descending),
  ///   * exactly once per top-level layer per backward() call (layers with
  ///     no parameters included),
  ///   * synchronously, on the thread running backward().
  /// A nested Network (e.g. a residual branch) reports once, as a whole,
  /// when the enclosing top-level layer's backward returns.
  /// The planned and legacy execution paths fire identically.
  using GradReadyHook = std::function<void(std::size_t layer_index, Layer&)>;

  /// Installs (or clears, with nullptr) the gradient-ready hook.
  void set_grad_ready_hook(GradReadyHook hook) {
    grad_ready_hook_ = std::move(hook);
  }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;

 private:
  /// True when `pc` carries the plan this network's ids were assigned by.
  bool plan_matches(const PlanContext& pc) const {
    return pc.planned() && pc.epoch() == plan_epoch_;
  }

  /// Label-prefixed ParamRef list, built once and reused (the per-iteration
  /// flatten/unflatten path must not rebuild name strings every call).
  const std::vector<ParamRef>& cached_params();

  std::string label_ = "net";
  GradReadyHook grad_ready_hook_;
  std::vector<LayerPtr> layers_;
  std::vector<Tensor> acts_;    // legacy: acts_[i] = output of layers_[i]
  std::vector<Tensor> dacts_;   // legacy gradient scratch, same indexing

  // Plan state from the most recent plan_forward/plan_backward walk.
  std::vector<TensorId> plan_act_;    // arena act ids, acts_ indexing
  std::vector<TensorId> plan_dact_;   // arena dact ids, dacts_ indexing
  std::vector<Shape> plan_in_shapes_; // input shape seen by each layer
  Shape plan_input_;
  std::uint64_t plan_epoch_ = 0;
  bool plan_training_ = false;
  bool last_forward_planned_ = false;

  // Cached parameter metadata (satellite of the planning work: the flat
  // allreduce buffer path was reallocating every call).
  std::vector<ParamRef> param_cache_;
  bool param_cache_valid_ = false;
  std::int64_t flat_size_ = 0;
};

}  // namespace minsgd::nn
