// Network: a sequential container of layers that is itself a Layer.
//
// It owns the inter-layer activations so the usual (x, y, dy) backward
// contract works for arbitrarily deep stacks, and it can therefore be nested
// (residual blocks hold Networks for their branches).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace minsgd::nn {

/// Sequential layer container with owned activation storage.
class Network final : public Layer {
 public:
  Network() = default;
  explicit Network(std::string label) : label_(std::move(label)) {}

  /// Appends a layer; returns a reference for chaining.
  Network& add(LayerPtr layer);

  /// Emplace-style helper: net.emplace<Conv2d>(3, 64, 7, 2, 3).
  template <typename L, typename... Args>
  Network& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  // Layer interface -----------------------------------------------------
  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::vector<ParamRef> params() override;
  std::vector<BufferRef> buffers() override;
  std::vector<Rng*> rng_streams() override;
  void init(Rng& rng) override;
  std::int64_t flops(const Shape& input) const override;

  // Whole-network conveniences ------------------------------------------
  /// Total learnable parameter count.
  std::int64_t num_params();

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Copies all parameter values into a single flat vector (and back).
  /// The flat layout is the order params() returns; it is the unit the
  /// data-parallel trainer allreduces.
  std::vector<float> flatten_params();
  void unflatten_params(std::span<const float> flat);
  std::vector<float> flatten_grads();
  void unflatten_grads(std::span<const float> flat);

  // Gradient-ready observation -------------------------------------------
  /// Hook fired during backward() immediately after layers_[i]->backward()
  /// returns — the point at which layer i's parameter gradients are final
  /// for this pass (parameters are not shared between layers, so no later
  /// backward call touches them).
  ///
  /// Ordering guarantees the comm-overlap machinery relies on:
  ///   * fires output→input (layer index strictly descending),
  ///   * exactly once per top-level layer per backward() call (layers with
  ///     no parameters included),
  ///   * synchronously, on the thread running backward().
  /// A nested Network (e.g. a residual branch) reports once, as a whole,
  /// when the enclosing top-level layer's backward returns.
  using GradReadyHook = std::function<void(std::size_t layer_index, Layer&)>;

  /// Installs (or clears, with nullptr) the gradient-ready hook.
  void set_grad_ready_hook(GradReadyHook hook) {
    grad_ready_hook_ = std::move(hook);
  }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx) override;

 private:
  std::string label_ = "net";
  GradReadyHook grad_ready_hook_;
  std::vector<LayerPtr> layers_;
  std::vector<Tensor> acts_;    // acts_[i] = output of layers_[i]
  std::vector<Tensor> dacts_;   // gradient scratch, same indexing
};

}  // namespace minsgd::nn
