// ExecutionPlan: graph-compiled memory for Network forward/backward.
//
// Instead of every layer allocating activations and scratch per call, a
// plan walks the layer graph once per input geometry (Layer::plan_forward /
// plan_backward, recursing into nested Networks inside residual branches)
// and records every activation, gradient, and per-call scratch tensor with
// its size and liveness interval on a single step timeline: all forward
// steps first, then backward steps in output→input order — the same order
// the grad-ready hook fires, so the plan agrees with comm overlap about
// when each buffer is dead. A TensorArena (tensor/arena.hpp) then lays the
// intervals out with liveness-based aliasing, and execution binds layer I/O
// to arena slices.
//
// Key liveness facts the plan exploits:
//   * dact_i (the gradient flowing into layer i) dies as soon as layer i's
//     backward finishes — the whole backward gradient chain collapses into
//     a two-slot ping-pong.
//   * with PlanOptions.recompute_cheap, an activation whose producer never
//     reads its output in backward and whose consumer never reads its input
//     (Layer::backward_reads_output/backward_reads_input) dies at its last
//     forward read — e.g. a conv output feeding batch-norm is dead before
//     backward starts.
//
// The plan is invalidated and rebuilt when the input shape, training flag,
// or recompute option changes. MINSGD_MEMPLAN=off (or
// ExecutionPlan::set_enabled(false)) reverts to the legacy
// allocate-per-call path; both paths are bit-identical for every thread
// count — the plan moves bytes, never arithmetic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/check.hpp"
#include "tensor/arena.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::nn {

class Network;
class ExecutionPlan;

/// Index of a logical tensor inside a plan's arena.
using TensorId = std::int32_t;
inline constexpr TensorId kNoTensor = -1;

/// Options a plan is built under; changing any of them rebuilds the plan.
struct PlanOptions {
  /// Plans cover forward+backward; inference-only callers still build with
  /// training semantics (the arena is sized for the full cycle).
  bool training = true;

  /// Shrink activations that provably are not read in backward to their
  /// last forward use. Defaults to MINSGD_MEMPLAN_RECOMPUTE (on unless
  /// "0|off|false"). Bit-identical either way — only liveness changes.
  bool recompute_cheap;

  PlanOptions();
};

/// Accumulates the step timeline and tensor intervals during the
/// plan_forward/plan_backward walk. Layers store the TensorIds this hands
/// out and use them to fetch arena slices through PlanContext at run time.
class PlanBuilder {
 public:
  PlanBuilder(std::uint64_t epoch, const PlanOptions& opts)
      : epoch_(epoch), opts_(opts) {}

  std::uint64_t epoch() const { return epoch_; }
  bool training() const { return opts_.training; }
  bool recompute() const { return opts_.recompute_cheap; }

  /// Advances the step clock; returns the new current step. Steps start at
  /// 1 (0 means "before anything runs").
  std::int32_t tick() { return ++now_; }
  std::int32_t now() const { return now_; }

  /// Registers a tensor of `shape` live over [def, last]; returns its id.
  TensorId add(const Shape& shape, std::int32_t def, std::int32_t last) {
    items_.push_back({shape, shape.numel(), def, last});
    return static_cast<TensorId>(items_.size() - 1);
  }

  /// Per-call scratch of `elems` floats, live only at `step`.
  TensorId scratch(std::int64_t elems, std::int32_t step) {
    items_.push_back({Shape{elems}, elems, step, step});
    return static_cast<TensorId>(items_.size() - 1);
  }

  /// Extends `id`'s liveness to cover `step` (no-op for kNoTensor).
  void extend(TensorId id, std::int32_t step) {
    if (id == kNoTensor) return;
    auto& it = items_.at(static_cast<std::size_t>(id));
    if (step > it.last) it.last = step;
    if (step < it.def) it.def = step;
  }

  std::vector<ArenaItem> take_items() { return std::move(items_); }

 private:
  std::uint64_t epoch_;
  PlanOptions opts_;
  std::vector<ArenaItem> items_;
  std::int32_t now_ = 0;
};

/// A compiled memory plan for one Network at one input geometry. Trainers
/// own one plan per replica and keep it across iterations; ensure() makes
/// it a no-op when the geometry is unchanged and a rebuild when it is not.
class ExecutionPlan {
 public:
  /// Process-wide gate, MINSGD_MEMPLAN at startup (on unless "0|off|false").
  /// Off, context() hands out legacy allocate-per-call contexts.
  static bool enabled();
  static void set_enabled(bool on);

  /// Default for PlanOptions::recompute_cheap, MINSGD_MEMPLAN_RECOMPUTE at
  /// startup; tests flip it to cover both liveness policies.
  static bool recompute_default();
  static void set_recompute_default(bool on);

  ExecutionPlan() = default;
  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;

  /// (Re)builds the plan if `net`/`input`/`opts` differ from what it was
  /// built for. Returns true when a rebuild happened.
  bool ensure(Network& net, const Shape& input, const PlanOptions& opts = {});

  /// ensure() + a PlanContext bound to this plan — or a legacy context when
  /// the MINSGD_MEMPLAN gate is off. The one-liner trainers use per
  /// iteration.
  class PlanContext context(Network& net, const Shape& input,
                            const PlanOptions& opts = {});

  bool built() const { return built_; }
  /// Process-unique build stamp; layers compare it against the ids they
  /// stored to reject contexts from a different (or rebuilt) plan.
  std::uint64_t epoch() const { return epoch_; }
  bool training() const { return training_; }
  const Shape& input_shape() const { return input_; }

  Tensor& tensor(TensorId id) {
    MINSGD_CHECK(built_ && id >= 0, "ExecutionPlan: bad tensor id ", id);
    return arena_.tensor(static_cast<std::size_t>(id));
  }

  // Stats (also exported as plan.* metrics on each rebuild).
  std::int64_t arena_bytes() const { return arena_.total_bytes(); }
  std::int64_t raw_bytes() const { return arena_.raw_bytes(); }
  std::int64_t num_tensors() const { return static_cast<std::int64_t>(arena_.size()); }
  std::int32_t steps() const { return steps_; }
  std::int64_t rebuilds() const { return rebuilds_; }

 private:
  void build(Network& net, const Shape& input, const PlanOptions& opts);

  TensorArena arena_;
  Network* net_ = nullptr;
  Shape input_;
  bool built_ = false;
  bool training_ = false;
  bool recompute_ = false;
  std::uint64_t epoch_ = 0;
  std::int32_t steps_ = 0;
  std::int64_t rebuilds_ = 0;
};

/// The scratch/binding handle threaded through do_forward/do_backward.
///
/// Planned (constructed from a built ExecutionPlan): tensor(id, shape)
/// returns the arena slice for `id`, reshaped — no allocation. Legacy
/// (default-constructed): every request allocates a fresh per-call tensor,
/// released when the requesting layer's forward/backward wrapper returns —
/// the pre-plan behaviour, kept behind MINSGD_MEMPLAN=off as the semantic
/// reference. `id == kNoTensor` takes the legacy path even under a plan
/// (used when a runtime gate, e.g. MINSGD_CONV_DIRECT, changed between plan
/// build and execution and a scratch exists the plan did not foresee).
class PlanContext {
 public:
  PlanContext() = default;
  explicit PlanContext(ExecutionPlan* plan)
      : plan_(plan), epoch_(plan != nullptr ? plan->epoch() : 0) {}

  PlanContext(PlanContext&&) = default;
  PlanContext& operator=(PlanContext&&) = default;

  bool planned() const { return plan_ != nullptr; }
  ExecutionPlan* plan() const { return plan_; }
  std::uint64_t epoch() const { return epoch_; }

  /// The tensor for `id`, resized to `shape`. See class comment for the
  /// planned/legacy split. References stay valid until the requesting layer
  /// call returns (legacy) or the plan is rebuilt (planned).
  Tensor& tensor(TensorId id, const Shape& shape) {
    if (plan_ != nullptr && id != kNoTensor) {
      Tensor& t = plan_->tensor(id);
      t.resize(shape);
      return t;
    }
    // minsgd-analyze: allow(hot-path-alloc): PlanContext::tensor IS the
    // sanctioned allocator — the legacy fallback when ExecutionPlan is
    // disabled (MINSGD_MEMPLAN=0); planned runs take the arena branch above.
    legacy_.push_back(std::make_unique<Tensor>(shape));
    return *legacy_.back();
  }

  /// Raw float scratch of `elems` (a rank-1 tensor under the hood). Layers
  /// that need per-chunk scratch request one chunk-strided block *before*
  /// entering the parallel region and index it by chunk, so no allocation —
  /// legacy or planned — ever happens on a worker thread.
  std::span<float> floats(TensorId id, std::int64_t elems) {
    return tensor(id, Shape{elems}).span();
  }

  // Per-layer-call scoping for legacy scratch; driven by the Layer NVI
  // wrappers, never by layer implementations.
  std::size_t mark() const { return legacy_.size(); }
  void release(std::size_t m) { legacy_.resize(m); }

 private:
  ExecutionPlan* plan_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<Tensor>> legacy_;
};

}  // namespace minsgd::nn
