// Linear: fully connected layer, y = x W^T + b.
#pragma once

#include <cstdint>

#include "nn/layer.hpp"

namespace minsgd::nn {

/// Fully connected layer over (N x in) inputs producing (N x out).
/// Weight layout is (out x in) so forward is one sgemm with B transposed.
class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool bias = true);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::vector<ParamRef> params() override;
  void init(Rng& rng) override;
  std::int64_t flops(const Shape& input) const override;

  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }

  /// Backward reads x (dW needs it) but never y's data.
  bool backward_reads_output() const override { return false; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;

 private:
  std::int64_t in_, out_;
  bool has_bias_;
  Tensor w_, b_, dw_, db_;
};

}  // namespace minsgd::nn
