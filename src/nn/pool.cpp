#include "nn/pool.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace minsgd::nn {
namespace {

Shape pooled_shape(const Shape& input, std::int64_t k, std::int64_t stride,
                   std::int64_t pad, const char* what) {
  if (input.rank() != 4) {
    throw std::invalid_argument(std::string(what) + ": input must be NCHW");
  }
  const std::int64_t out_h = (input[2] + 2 * pad - k) / stride + 1;
  const std::int64_t out_w = (input[3] + 2 * pad - k) / stride + 1;
  if (out_h <= 0 || out_w <= 0) {
    throw std::invalid_argument(std::string(what) + ": input too small " +
                                input.str());
  }
  return {input[0], input[1], out_h, out_w};
}

}  // namespace

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad)
    : k_(kernel), stride_(stride), pad_(pad) {
  if (k_ <= 0 || stride_ <= 0 || pad_ < 0) {
    throw std::invalid_argument("MaxPool2d: invalid configuration");
  }
}

std::string MaxPool2d::name() const {
  return "maxpool" + std::to_string(k_) + "/s" + std::to_string(stride_);
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  return pooled_shape(input, k_, stride_, pad_, "MaxPool2d");
}

void MaxPool2d::do_forward(const Tensor& x, Tensor& y, bool /*training*/,
                           const ComputeContext& ctx, PlanContext& /*pc*/) {
  const Shape out = output_shape(x.shape());
  y.resize(out);
  argmax_.assign(static_cast<std::size_t>(out.numel()), -1);
  const std::int64_t batch = out[0], ch = out[1], oh = out[2], ow = out[3];
  const std::int64_t h = x.shape()[2], w = x.shape()[3];
  ctx.parallel_for(0, batch, [&](std::int64_t n_lo, std::int64_t n_hi) {
  for (std::int64_t n = n_lo; n < n_hi; ++n) {
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          const std::int64_t oi = ((n * ch + c) * oh + i) * ow + j;
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = -1;
          for (std::int64_t ki = 0; ki < k_; ++ki) {
            const std::int64_t ih = i * stride_ - pad_ + ki;
            if (ih < 0 || ih >= h) continue;
            for (std::int64_t kj = 0; kj < k_; ++kj) {
              const std::int64_t iw = j * stride_ - pad_ + kj;
              if (iw < 0 || iw >= w) continue;
              const float v = x.at(n, c, ih, iw);
              if (v > best) {
                best = v;
                best_idx = ((n * ch + c) * h + ih) * w + iw;
              }
            }
          }
          y[oi] = best;
          argmax_[static_cast<std::size_t>(oi)] = best_idx;
        }
      }
    }
  }
  }, /*grain=*/1);
}

void MaxPool2d::do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                            Tensor& dx, const ComputeContext& ctx,
                            PlanContext& /*pc*/) {
  dx.resize(x.shape());
  dx.zero();
  // Parallel over the batch only: every argmax index of image n lies inside
  // image n's slice of dx, so chunks write disjoint ranges.
  const std::int64_t batch = y.shape()[0];
  const std::int64_t per_img = y.numel() / std::max<std::int64_t>(1, batch);
  ctx.parallel_for(
      0, batch,
      [&](std::int64_t n_lo, std::int64_t n_hi) {
        for (std::int64_t i = n_lo * per_img; i < n_hi * per_img; ++i) {
          const std::int64_t src = argmax_[static_cast<std::size_t>(i)];
          if (src >= 0) dx[src] += dy[i];
        }
      },
      /*grain=*/1);
}

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad)
    : k_(kernel), stride_(stride), pad_(pad) {
  if (k_ <= 0 || stride_ <= 0 || pad_ < 0) {
    throw std::invalid_argument("AvgPool2d: invalid configuration");
  }
}

std::string AvgPool2d::name() const {
  return "avgpool" + std::to_string(k_) + "/s" + std::to_string(stride_);
}

Shape AvgPool2d::output_shape(const Shape& input) const {
  return pooled_shape(input, k_, stride_, pad_, "AvgPool2d");
}

void AvgPool2d::do_forward(const Tensor& x, Tensor& y, bool /*training*/,
                           const ComputeContext& ctx, PlanContext& /*pc*/) {
  const Shape out = output_shape(x.shape());
  y.resize(out);
  const std::int64_t batch = out[0], ch = out[1], oh = out[2], ow = out[3];
  const std::int64_t h = x.shape()[2], w = x.shape()[3];
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  ctx.parallel_for(0, batch, [&](std::int64_t n_lo, std::int64_t n_hi) {
  for (std::int64_t n = n_lo; n < n_hi; ++n) {
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          double acc = 0.0;
          for (std::int64_t ki = 0; ki < k_; ++ki) {
            const std::int64_t ih = i * stride_ - pad_ + ki;
            if (ih < 0 || ih >= h) continue;
            for (std::int64_t kj = 0; kj < k_; ++kj) {
              const std::int64_t iw = j * stride_ - pad_ + kj;
              if (iw < 0 || iw >= w) continue;
              acc += x.at(n, c, ih, iw);
            }
          }
          y.at(n, c, i, j) = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  }, /*grain=*/1);
}

void AvgPool2d::do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                            Tensor& dx, const ComputeContext& ctx,
                            PlanContext& /*pc*/) {
  dx.resize(x.shape());
  dx.zero();
  const Shape out = y.shape();
  const std::int64_t batch = out[0], ch = out[1], oh = out[2], ow = out[3];
  const std::int64_t h = x.shape()[2], w = x.shape()[3];
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  ctx.parallel_for(0, batch, [&](std::int64_t n_lo, std::int64_t n_hi) {
  for (std::int64_t n = n_lo; n < n_hi; ++n) {
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          const float g = dy.at(n, c, i, j) * inv;
          for (std::int64_t ki = 0; ki < k_; ++ki) {
            const std::int64_t ih = i * stride_ - pad_ + ki;
            if (ih < 0 || ih >= h) continue;
            for (std::int64_t kj = 0; kj < k_; ++kj) {
              const std::int64_t iw = j * stride_ - pad_ + kj;
              if (iw < 0 || iw >= w) continue;
              dx.at(n, c, ih, iw) += g;
            }
          }
        }
      }
    }
  }
  }, /*grain=*/1);
}

Shape GlobalAvgPool::output_shape(const Shape& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("GlobalAvgPool: input must be NCHW");
  }
  return {input[0], input[1]};
}

void GlobalAvgPool::do_forward(const Tensor& x, Tensor& y, bool /*training*/,
                               const ComputeContext& ctx, PlanContext& /*pc*/) {
  const Shape out = output_shape(x.shape());
  y.resize(out);
  const std::int64_t batch = out[0], ch = out[1];
  const std::int64_t spatial = x.shape()[2] * x.shape()[3];
  const float inv = 1.0f / static_cast<float>(spatial);
  ctx.parallel_for(
      0, batch,
      [&](std::int64_t n_lo, std::int64_t n_hi) {
        for (std::int64_t n = n_lo; n < n_hi; ++n) {
          for (std::int64_t c = 0; c < ch; ++c) {
            const float* src = x.data() + (n * ch + c) * spatial;
            double acc = 0.0;
            for (std::int64_t s = 0; s < spatial; ++s) acc += src[s];
            y.at(n, c) = static_cast<float>(acc) * inv;
          }
        }
      },
      /*grain=*/1);
}

void GlobalAvgPool::do_backward(const Tensor& x, const Tensor& /*y*/,
                                const Tensor& dy, Tensor& dx,
                                const ComputeContext& ctx,
                                PlanContext& /*pc*/) {
  dx.resize(x.shape());
  const std::int64_t batch = x.shape()[0], ch = x.shape()[1];
  const std::int64_t spatial = x.shape()[2] * x.shape()[3];
  const float inv = 1.0f / static_cast<float>(spatial);
  ctx.parallel_for(
      0, batch,
      [&](std::int64_t n_lo, std::int64_t n_hi) {
        for (std::int64_t n = n_lo; n < n_hi; ++n) {
          for (std::int64_t c = 0; c < ch; ++c) {
            float* dst = dx.data() + (n * ch + c) * spatial;
            const float g = dy.at(n, c) * inv;
            for (std::int64_t s = 0; s < spatial; ++s) dst[s] = g;
          }
        }
      },
      /*grain=*/1);
}

}  // namespace minsgd::nn
