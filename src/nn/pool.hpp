// Pooling layers: max, average, and global average.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace minsgd::nn {

/// Max pooling over NCHW. Caches argmax indices for backward.
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad = 0);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;

  /// Backward routes dy through the cached argmax indices; x and y supply
  /// shapes only.
  bool backward_reads_input() const override { return false; }
  bool backward_reads_output() const override { return false; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;

 private:
  std::int64_t k_, stride_, pad_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Average pooling over NCHW (zero-padded cells count toward the divisor,
/// matching Caffe's AVE pooling which the paper's stack used).
class AvgPool2d final : public Layer {
 public:
  AvgPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad = 0);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;

  /// Backward spreads dy uniformly; x and y supply shapes only.
  bool backward_reads_input() const override { return false; }
  bool backward_reads_output() const override { return false; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;

 private:
  std::int64_t k_, stride_, pad_;
};

/// Global average pooling: NCHW -> (N, C). The ResNet head.
class GlobalAvgPool final : public Layer {
 public:
  std::string name() const override { return "gap"; }
  Shape output_shape(const Shape& input) const override;

  /// Backward spreads dy uniformly; x and y supply shapes only.
  bool backward_reads_input() const override { return false; }
  bool backward_reads_output() const override { return false; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;
};

}  // namespace minsgd::nn
