// Conv2d: 2-D convolution lowered to im2col + sgemm, with a direct
// (im2col-free) fast path for 1x1 and stride-1 3x3 ungrouped shapes.
#pragma once

#include <cstdint>
#include <string>

#include "nn/layer.hpp"
#include "nn/plan.hpp"

namespace minsgd::nn {

/// 2-D convolution over NCHW inputs. Weight layout is OIHW; output is
/// NC'H'W' with H' = (H + 2*pad - kh)/stride + 1.
class Conv2d final : public Layer {
 public:
  /// `groups` splits channels Krizhevsky-style: in/out channels are divided
  /// into `groups` independent convolutions (weight is OIHW with
  /// I = in_channels/groups).
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride = 1, std::int64_t pad = 0,
         bool bias = true, std::int64_t groups = 1);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override;
  std::vector<ParamRef> params() override;
  void init(Rng& rng) override;
  std::int64_t flops(const Shape& input) const override;

  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }

  /// Backward reads x (dW needs it) but only y's shape, never its data —
  /// the planner may retire conv outputs at their last forward read.
  bool backward_reads_output() const override { return false; }

  Shape plan_forward(PlanBuilder& builder, const Shape& input) override;
  void plan_backward(PlanBuilder& builder, const Shape& input) override;

  /// Process-wide toggle for the direct (im2col-free) conv path. On by
  /// default; MINSGD_CONV_DIRECT=off/0/false disables it at startup. The
  /// im2col path stays the semantic reference — for shapes where sgemm takes
  /// its packed path the two produce bit-identical outputs, so tests and
  /// benches flip this to compare them.
  static void set_direct_enabled(bool on);
  static bool direct_enabled();

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;

 private:
  void im2col(const Tensor& x, std::int64_t n, float* col,
              std::int64_t out_h, std::int64_t out_w) const;
  void col2im(const float* col, Tensor& dx, std::int64_t n, std::int64_t out_h,
              std::int64_t out_w) const;

  /// Backward dW-partial chunk count: a function of (batch, weight size)
  /// only, shared by plan_backward and do_backward so the planned scratch
  /// block always matches the runtime request.
  std::int64_t backward_chunks(std::int64_t batch) const;

  std::int64_t in_c_, out_c_, k_, stride_, pad_, groups_;
  bool has_bias_;
  Tensor w_, b_, dw_, db_;

  // Scratch ids assigned by the most recent plan walk (kNoTensor when the
  // plan decided the scratch is not needed, e.g. direct paths).
  TensorId plan_fwd_col_ = kNoTensor;
  TensorId plan_bwd_col_ = kNoTensor;
  TensorId plan_bwd_dcol_ = kNoTensor;
  TensorId plan_bwd_dw_ = kNoTensor;
  TensorId plan_bwd_db_ = kNoTensor;
};

}  // namespace minsgd::nn
