#include "nn/residual.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace minsgd::nn {

ResidualBlock::ResidualBlock(std::unique_ptr<Network> branch,
                             std::unique_ptr<Network> shortcut)
    : branch_(std::move(branch)), shortcut_(std::move(shortcut)) {
  if (!branch_) throw std::invalid_argument("ResidualBlock: null branch");
}

std::string ResidualBlock::name() const {
  return shortcut_ ? "resblock(proj)" : "resblock(id)";
}

Shape ResidualBlock::output_shape(const Shape& input) const {
  const Shape b = branch_->output_shape(input);
  const Shape s = shortcut_ ? shortcut_->output_shape(input) : input;
  if (b != s) {
    throw std::invalid_argument("ResidualBlock: branch " + b.str() +
                                " vs shortcut " + s.str() + " mismatch");
  }
  return b;
}

void ResidualBlock::do_forward(const Tensor& x, Tensor& y, bool training,
                               const ComputeContext& ctx) {
  branch_->forward(x, branch_out_, training, ctx);
  const Tensor* sc = &x;
  if (shortcut_) {
    shortcut_->forward(x, shortcut_out_, training, ctx);
    sc = &shortcut_out_;
  }
  if (branch_out_.shape() != sc->shape()) {
    throw std::logic_error("ResidualBlock: shape mismatch at add");
  }
  sum_out_.resize(branch_out_.shape());
  add(ctx, branch_out_.span(), sc->span(), sum_out_.span());
  y.resize(sum_out_.shape());
  copy(ctx, sum_out_.span(), y.span());
  relu_inplace(ctx, y.span());
}

void ResidualBlock::do_backward(const Tensor& x, const Tensor& y,
                                const Tensor& dy, Tensor& dx,
                                const ComputeContext& ctx) {
  // Through the final ReLU: pass gradient where y > 0.
  d_sum_.resize(y.shape());
  ctx.parallel_for(0, y.numel(), [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      d_sum_[i] = y[i] > 0.0f ? dy[i] : 0.0f;
    }
  });
  // The add fans the gradient out to both the branch and the shortcut.
  branch_->backward(x, branch_out_, d_sum_, d_branch_in_, ctx);
  if (shortcut_) {
    shortcut_->backward(x, shortcut_out_, d_sum_, d_shortcut_in_, ctx);
    dx.resize(x.shape());
    add(ctx, d_branch_in_.span(), d_shortcut_in_.span(), dx.span());
  } else {
    dx.resize(x.shape());
    add(ctx, d_branch_in_.span(), d_sum_.span(), dx.span());
  }
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> all = branch_->params();
  if (shortcut_) {
    auto sp = shortcut_->params();
    all.insert(all.end(), sp.begin(), sp.end());
  }
  return all;
}

std::vector<BufferRef> ResidualBlock::buffers() {
  std::vector<BufferRef> all = branch_->buffers();
  if (shortcut_) {
    auto sb = shortcut_->buffers();
    all.insert(all.end(), sb.begin(), sb.end());
  }
  return all;
}

std::vector<Rng*> ResidualBlock::rng_streams() {
  std::vector<Rng*> all = branch_->rng_streams();
  if (shortcut_) {
    auto ss = shortcut_->rng_streams();
    all.insert(all.end(), ss.begin(), ss.end());
  }
  return all;
}

void ResidualBlock::init(Rng& rng) {
  branch_->init(rng);
  if (shortcut_) shortcut_->init(rng);
}

std::int64_t ResidualBlock::flops(const Shape& input) const {
  std::int64_t f = branch_->flops(input);
  if (shortcut_) f += shortcut_->flops(input);
  return f;
}

}  // namespace minsgd::nn
