#include "nn/residual.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace minsgd::nn {

ResidualBlock::ResidualBlock(std::unique_ptr<Network> branch,
                             std::unique_ptr<Network> shortcut)
    : branch_(std::move(branch)), shortcut_(std::move(shortcut)) {
  if (!branch_) throw std::invalid_argument("ResidualBlock: null branch");
}

std::string ResidualBlock::name() const {
  return shortcut_ ? "resblock(proj)" : "resblock(id)";
}

Shape ResidualBlock::output_shape(const Shape& input) const {
  const Shape b = branch_->output_shape(input);
  const Shape s = shortcut_ ? shortcut_->output_shape(input) : input;
  if (b != s) {
    throw std::invalid_argument("ResidualBlock: branch " + b.str() +
                                " vs shortcut " + s.str() + " mismatch");
  }
  return b;
}

bool ResidualBlock::backward_reads_input() const {
  return branch_->backward_reads_input() ||
         (shortcut_ != nullptr && shortcut_->backward_reads_input());
}

Shape ResidualBlock::plan_forward(PlanBuilder& builder, const Shape& input) {
  plan_epoch_ = builder.epoch();
  const Shape out = branch_->plan_forward(builder, input);
  // branch_out is written by the branch's final copy step (the last step of
  // its forward region) and read at the add step below.
  const std::int32_t s_branch_done = builder.now();
  std::int32_t s_shortcut_done = 0;
  if (shortcut_) {
    shortcut_->plan_forward(builder, input);
    s_shortcut_done = builder.now();
  }
  const std::int32_t s_add = builder.tick();  // add + relu into y
  plan_branch_out_ = builder.add(out, s_branch_done, s_add);
  plan_shortcut_out_ =
      shortcut_ ? builder.add(out, s_shortcut_done, s_add) : kNoTensor;
  return out;
}

void ResidualBlock::plan_backward(PlanBuilder& builder, const Shape& input) {
  const Shape out = branch_->output_shape(input);
  // Step 1: relu mask — reads y (the enclosing plan keeps it alive because
  // backward_reads_output() is true) and dy, writes d_sum.
  const std::int32_t s_relu = builder.tick();
  plan_d_sum_ = builder.add(out, s_relu, s_relu);
  // Step region 2: branch backward consumes d_sum as dy, produces d_branch_in.
  const std::int32_t s_b0 = builder.now() + 1;
  branch_->plan_backward(builder, input);
  plan_d_branch_in_ = builder.add(input, s_b0, builder.now());
  // Step region 3: shortcut backward, same shape.
  if (shortcut_) {
    const std::int32_t s_s0 = builder.now() + 1;
    shortcut_->plan_backward(builder, input);
    plan_d_shortcut_in_ = builder.add(input, s_s0, builder.now());
  } else {
    plan_d_shortcut_in_ = kNoTensor;
  }
  // Step 4: combine into dx. d_sum is read through every region above
  // (identity shortcut reads it at the combine itself).
  const std::int32_t s_comb = builder.tick();
  builder.extend(plan_d_sum_, s_comb);
  builder.extend(plan_d_branch_in_, s_comb);
  builder.extend(plan_d_shortcut_in_, s_comb);
}

void ResidualBlock::do_forward(const Tensor& x, Tensor& y, bool training,
                               const ComputeContext& ctx, PlanContext& pc) {
  const bool planned = pc.planned() && pc.epoch() == plan_epoch_;
  // A planned context from a different plan must not reach the nested
  // networks (their TensorIds would index the wrong arena).
  PlanContext* sub = (planned || !pc.planned()) ? &pc : nullptr;
  Tensor& bo = planned ? pc.plan()->tensor(plan_branch_out_) : branch_out_;
  branch_->forward(x, bo, training, ctx, sub);
  const Tensor* sc = &x;
  if (shortcut_) {
    Tensor& so =
        planned ? pc.plan()->tensor(plan_shortcut_out_) : shortcut_out_;
    shortcut_->forward(x, so, training, ctx, sub);
    sc = &so;
  }
  if (bo.shape() != sc->shape()) {
    throw std::logic_error("ResidualBlock: shape mismatch at add");
  }
  y.resize(bo.shape());
  add(ctx, bo.span(), sc->span(), y.span());
  relu_inplace(ctx, y.span());
}

void ResidualBlock::do_backward(const Tensor& x, const Tensor& y,
                                const Tensor& dy, Tensor& dx,
                                const ComputeContext& ctx, PlanContext& pc) {
  const bool planned = pc.planned() && pc.epoch() == plan_epoch_;
  PlanContext* sub = (planned || !pc.planned()) ? &pc : nullptr;
  Tensor& bo = planned ? pc.plan()->tensor(plan_branch_out_) : branch_out_;
  Tensor& ds = planned ? pc.plan()->tensor(plan_d_sum_) : d_sum_;
  Tensor& dbi =
      planned ? pc.plan()->tensor(plan_d_branch_in_) : d_branch_in_;
  // Through the final ReLU: pass gradient where y > 0.
  ds.resize(y.shape());
  ctx.parallel_for(0, y.numel(), [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      ds[i] = y[i] > 0.0f ? dy[i] : 0.0f;
    }
  });
  // The add fans the gradient out to both the branch and the shortcut.
  branch_->backward(x, bo, ds, dbi, ctx, sub);
  if (shortcut_) {
    Tensor& so =
        planned ? pc.plan()->tensor(plan_shortcut_out_) : shortcut_out_;
    Tensor& dsi =
        planned ? pc.plan()->tensor(plan_d_shortcut_in_) : d_shortcut_in_;
    shortcut_->backward(x, so, ds, dsi, ctx, sub);
    dx.resize(x.shape());
    add(ctx, dbi.span(), dsi.span(), dx.span());
  } else {
    dx.resize(x.shape());
    add(ctx, dbi.span(), ds.span(), dx.span());
  }
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> all = branch_->params();
  if (shortcut_) {
    auto sp = shortcut_->params();
    all.insert(all.end(), sp.begin(), sp.end());
  }
  return all;
}

std::vector<BufferRef> ResidualBlock::buffers() {
  std::vector<BufferRef> all = branch_->buffers();
  if (shortcut_) {
    auto sb = shortcut_->buffers();
    all.insert(all.end(), sb.begin(), sb.end());
  }
  return all;
}

std::vector<Rng*> ResidualBlock::rng_streams() {
  std::vector<Rng*> all = branch_->rng_streams();
  if (shortcut_) {
    auto ss = shortcut_->rng_streams();
    all.insert(all.end(), ss.begin(), ss.end());
  }
  return all;
}

void ResidualBlock::init(Rng& rng) {
  branch_->init(rng);
  if (shortcut_) shortcut_->init(rng);
}

std::int64_t ResidualBlock::flops(const Shape& input) const {
  std::int64_t f = branch_->flops(input);
  if (shortcut_) f += shortcut_->flops(input);
  return f;
}

}  // namespace minsgd::nn
