#include "nn/activation.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace minsgd::nn {

void ReLU::forward(const Tensor& x, Tensor& y, bool /*training*/) {
  y.resize(x.shape());
  copy(x.span(), y.span());
  relu_inplace(y.span());
}

void ReLU::backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                    Tensor& dx) {
  dx.resize(x.shape());
  const auto n = y.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    dx[i] = y[i] > 0.0f ? dy[i] : 0.0f;
  }
}

Shape Flatten::output_shape(const Shape& input) const {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: input rank < 2");
  }
  return {input[0], input.numel() / input[0]};
}

void Flatten::forward(const Tensor& x, Tensor& y, bool /*training*/) {
  y.resize(output_shape(x.shape()));
  copy(x.span(), y.span());
}

void Flatten::backward(const Tensor& x, const Tensor& /*y*/, const Tensor& dy,
                       Tensor& dx) {
  dx.resize(x.shape());
  copy(dy.span(), dx.span());
}

}  // namespace minsgd::nn
