#include "nn/activation.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace minsgd::nn {

void ReLU::do_forward(const Tensor& x, Tensor& y, bool /*training*/,
                      const ComputeContext& ctx, PlanContext& /*pc*/) {
  y.resize(x.shape());
  ctx.parallel_for(0, x.numel(), [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      y[i] = x[i] > 0.0f ? x[i] : 0.0f;
    }
  });
}

void ReLU::do_backward(const Tensor& x, const Tensor& /*y*/, const Tensor& dy,
                       Tensor& dx, const ComputeContext& ctx,
                       PlanContext& /*pc*/) {
  dx.resize(x.shape());
  // x > 0 iff y > 0 for y = max(x, 0), so gating on the input keeps the
  // output out of backward entirely (see backward_reads_output()).
  ctx.parallel_for(0, x.numel(), [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
    }
  });
}

Shape Flatten::output_shape(const Shape& input) const {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: input rank < 2");
  }
  return {input[0], input.numel() / input[0]};
}

void Flatten::do_forward(const Tensor& x, Tensor& y, bool /*training*/,
                         const ComputeContext& ctx, PlanContext& /*pc*/) {
  y.resize(output_shape(x.shape()));
  copy(ctx, x.span(), y.span());
}

void Flatten::do_backward(const Tensor& x, const Tensor& /*y*/,
                          const Tensor& dy, Tensor& dx,
                          const ComputeContext& ctx, PlanContext& /*pc*/) {
  dx.resize(x.shape());
  copy(ctx, dy.span(), dx.span());
}

}  // namespace minsgd::nn
