// Dropout with inverted scaling (test-time forward is the identity).
#pragma once

#include "nn/layer.hpp"

namespace minsgd::nn {

/// Inverted dropout: at train time each unit is zeroed with probability p
/// and survivors are scaled by 1/(1-p); at eval time it is the identity.
class Dropout final : public Layer {
 public:
  explicit Dropout(float p, std::uint64_t seed = 0x5eedu);

  std::string name() const override;
  Shape output_shape(const Shape& input) const override { return input; }

  /// Reseeds the mask stream (used to keep data-parallel replicas identical).
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  std::vector<Rng*> rng_streams() override { return {&rng_}; }

  /// Backward multiplies dy by the cached mask_; x and y supply shapes only.
  bool backward_reads_input() const override { return false; }
  bool backward_reads_output() const override { return false; }

 protected:
  void do_forward(const Tensor& x, Tensor& y, bool training,
                  const ComputeContext& ctx, PlanContext& pc) override;
  void do_backward(const Tensor& x, const Tensor& y, const Tensor& dy,
                   Tensor& dx, const ComputeContext& ctx,
                   PlanContext& pc) override;

 private:
  float p_;
  Rng rng_;
  Tensor mask_;
  bool last_was_training_ = false;
};

}  // namespace minsgd::nn
