// Weight initializers.
#pragma once

#include <cstdint>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::nn {

/// He (Kaiming) normal: N(0, sqrt(2 / fan_in)). The standard choice for
/// ReLU networks (used for every conv / linear weight in the model zoo).
void he_normal(Tensor& w, std::int64_t fan_in, Rng& rng);

/// Xavier (Glorot) uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng);

}  // namespace minsgd::nn
