// Model zoo: the two architectures the paper studies, plus scaled proxies.
//
// AlexNet / AlexNet-BN and ResNet-50 are built at full fidelity so parameter
// and FLOP counts match the paper's Table 6 (61M / 1.5 GFLOP and 25M /
// 7.7 GFLOP). The Tiny* proxies keep each architecture's character (conv
// trunk + heavy FC head vs. deep residual trunk + GAP) at a resolution a
// single core can train, and are what the accuracy experiments run.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/network.hpp"

namespace minsgd::nn {

enum class AlexNetNorm {
  kLRN,  // stock AlexNet (Krizhevsky 2012)
  kBN,   // "AlexNet-BN" refined model — required for batch 32K in the paper
};

/// Canonical input shapes (batch 1).
Shape alexnet_input();   // 3 x 227 x 227
Shape resnet_input();    // 3 x 224 x 224

/// Single-tower AlexNet with Krizhevsky's channel groups on conv2/4/5.
/// `norm` selects LRN (stock) or BatchNorm after conv layers (AlexNet-BN).
std::unique_ptr<Network> alexnet(std::int64_t classes = 1000,
                                 AlexNetNorm norm = AlexNetNorm::kLRN);

/// ResNet for ImageNet; depth in {18, 34, 50}. 50 uses bottleneck blocks
/// with stride on the first 1x1 (He et al. 2016 original), giving the
/// 7.7 GFLOP count the paper quotes.
std::unique_ptr<Network> resnet(std::int64_t depth,
                                std::int64_t classes = 1000);

/// AlexNet-style proxy for low-resolution synthetic ImageNet: conv trunk
/// with LRN or BN plus a dropout-regularized FC head. Input is
/// 3 x `resolution` x `resolution` (resolution >= 16).
/// `base_width` scales the conv widths (base_width/2x/2x) and the FC head
/// (8 * base_width); 32 reproduces the default proxy, 16 a faster micro one.
std::unique_ptr<Network> tiny_alexnet(std::int64_t classes,
                                      std::int64_t resolution,
                                      AlexNetNorm norm = AlexNetNorm::kBN,
                                      std::int64_t base_width = 32);

/// CIFAR-style residual proxy: 6n+2 layers (n basic blocks per stage,
/// widths 16/32/64), GAP head. Input is 3 x `resolution` x `resolution`.
std::unique_ptr<Network> tiny_resnet(std::int64_t blocks_per_stage,
                                     std::int64_t classes,
                                     std::int64_t resolution);

}  // namespace minsgd::nn
