// SoftmaxCrossEntropy: the classification loss head.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/context.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::nn {

/// Result of one loss evaluation over a batch.
struct LossResult {
  double loss = 0.0;       // mean cross-entropy over the batch
  std::int64_t correct = 0;  // top-1 hits
};

/// Fused softmax + cross-entropy over (N x classes) logits.
///
/// The gradient convention matches data-parallel summation: `dlogits` is
/// d(mean loss)/d(logits), so summing gradients over P workers and dividing
/// by P reproduces the gradient of the global-batch mean loss.
class SoftmaxCrossEntropy {
 public:
  /// Computes loss/top-1 and, if `dlogits` is non-null, the gradient.
  /// Batch rows are processed in deterministic chunks on `ctx` with the loss
  /// / top-1 partials combined in fixed chunk order, so the result is
  /// bit-identical for any thread count.
  LossResult forward_backward(
      const Tensor& logits, std::span<const std::int32_t> labels,
      Tensor* dlogits,
      const ComputeContext& ctx = ComputeContext::default_ctx()) const;
};

}  // namespace minsgd::nn
