#include "nn/linear.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace minsgd::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      w_({out_features, in_features}),
      b_(bias ? Tensor({out_features}) : Tensor()),
      dw_({out_features, in_features}),
      db_(bias ? Tensor({out_features}) : Tensor()) {
  if (in_ <= 0 || out_ <= 0) throw std::invalid_argument("Linear: bad dims");
}

std::string Linear::name() const {
  return "linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

Shape Linear::output_shape(const Shape& input) const {
  if (input.rank() != 2 || input[1] != in_) {
    throw std::invalid_argument("Linear " + name() + ": bad input " +
                                input.str());
  }
  return {input[0], out_};
}

void Linear::do_forward(const Tensor& x, Tensor& y, bool /*training*/,
                        const ComputeContext& ctx, PlanContext& /*pc*/) {
  const Shape out = output_shape(x.shape());
  y.resize(out);
  const std::int64_t batch = x.shape()[0];
  // y (batch x out) = x (batch x in) * W^T (in x out)
  sgemm(ctx, Trans::kNo, Trans::kYes, batch, out_, in_, 1.0f, x.data(), in_,
        w_.data(), in_, 0.0f, y.data(), out_);
  if (has_bias_) {
    ctx.parallel_for(
        0, batch,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t n = lo; n < hi; ++n) {
            float* row = y.data() + n * out_;
            for (std::int64_t o = 0; o < out_; ++o) row[o] += b_[o];
          }
        },
        /*grain=*/1);
  }
}

void Linear::do_backward(const Tensor& x, const Tensor& /*y*/, const Tensor& dy,
                         Tensor& dx, const ComputeContext& ctx,
                         PlanContext& /*pc*/) {
  const std::int64_t batch = x.shape()[0];
  dx.resize(x.shape());
  // dW (out x in) += dy^T (out x batch) * x (batch x in)
  sgemm(ctx, Trans::kYes, Trans::kNo, out_, in_, batch, 1.0f, dy.data(), out_,
        x.data(), in_, 1.0f, dw_.data(), in_);
  // dx (batch x in) = dy (batch x out) * W (out x in)
  sgemm(ctx, Trans::kNo, Trans::kNo, batch, in_, out_, 1.0f, dy.data(), out_,
        w_.data(), in_, 0.0f, dx.data(), in_);
  if (has_bias_) {
    // Parallel over output features: each feature's batch reduction stays
    // serial (and in batch order), so db_ is thread-count-invariant.
    ctx.parallel_for(
        0, out_,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t o = lo; o < hi; ++o) {
            float acc = db_[o];
            for (std::int64_t n = 0; n < batch; ++n) {
              acc += dy.data()[n * out_ + o];
            }
            db_[o] = acc;
          }
        },
        /*grain=*/16);
  }
}

std::vector<ParamRef> Linear::params() {
  std::vector<ParamRef> p;
  p.push_back({"weight", &w_, &dw_, /*decay=*/true});
  if (has_bias_) p.push_back({"bias", &b_, &db_, /*decay=*/false});
  return p;
}

void Linear::init(Rng& rng) {
  he_normal(w_, in_, rng);
  if (has_bias_) b_.zero();
}

std::int64_t Linear::flops(const Shape& /*input*/) const {
  return 2 * in_ * out_;
}

}  // namespace minsgd::nn
