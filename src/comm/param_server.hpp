// ParameterServer: the asynchronous (Downpour-style) baseline.
//
// The paper's Background section contrasts synchronous allreduce SGD with
// the master-worker parameter-server scheme where the master applies each
// worker's gradient on arrival, first-come-first-served, and returns the
// current weights. This class is that master: a mutex-serialized weight
// store with staleness accounting, used by train::AsyncParamServerTrainer.
#pragma once

#include <cstdint>
#include <algorithm>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace minsgd::comm {

class ParameterServer {
 public:
  /// Initializes the global weights.
  explicit ParameterServer(std::vector<float> initial_weights)
      : weights_(std::move(initial_weights)),
        worker_version_() {}

  std::size_t dim() const { return weights_.size(); }

  /// Registers `workers` clients (staleness is tracked per worker).
  void set_workers(int workers) {
    std::lock_guard lk(mu_);
    worker_version_.assign(static_cast<std::size_t>(workers), 0);
  }

  /// Worker `worker` pushes a gradient computed at its last pulled version
  /// and immediately receives the updated weights (one round trip, like the
  /// Downpour master). Returns the staleness (updates applied globally since
  /// that worker last pulled).
  std::int64_t push_pull(int worker, std::span<const float> grad, double lr,
                         std::span<float> weights_out) {
    std::lock_guard lk(mu_);
    if (grad.size() != weights_.size() ||
        weights_out.size() != weights_.size()) {
      throw std::invalid_argument("ParameterServer: dimension mismatch");
    }
    auto& seen = worker_version_.at(static_cast<std::size_t>(worker));
    const std::int64_t staleness = version_ - seen;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] -= static_cast<float>(lr) * grad[i];
    }
    ++version_;
    seen = version_;
    std::copy(weights_.begin(), weights_.end(), weights_out.begin());
    max_staleness_ = std::max(max_staleness_, staleness);
    return staleness;
  }

  /// Reads the current weights without updating (initial pull).
  void pull(int worker, std::span<float> weights_out) {
    std::lock_guard lk(mu_);
    if (weights_out.size() != weights_.size()) {
      throw std::invalid_argument("ParameterServer: dimension mismatch");
    }
    worker_version_.at(static_cast<std::size_t>(worker)) = version_;
    std::copy(weights_.begin(), weights_.end(), weights_out.begin());
  }

  std::int64_t updates_applied() const {
    std::lock_guard lk(mu_);
    return version_;
  }
  std::int64_t max_staleness() const {
    std::lock_guard lk(mu_);
    return max_staleness_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<float> weights_;
  std::vector<std::int64_t> worker_version_;
  std::int64_t version_ = 0;
  std::int64_t max_staleness_ = 0;
};

}  // namespace minsgd::comm
