#include "comm/membership.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "comm/cluster.hpp"
#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "core/check.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace minsgd::comm {

MembershipView MembershipView::initial(int world) {
  MINSGD_CHECK(world >= 1, "MembershipView::initial: world ", world, " < 1");
  MembershipView v;
  v.generation = 0;
  v.ranks.resize(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) v.ranks[static_cast<std::size_t>(r)] = r;
  return v;
}

ElasticCoordinator::ElasticCoordinator(SimCluster& cluster,
                                       MembershipView initial,
                                       std::vector<ElasticEvent> events,
                                       Options options)
    : cluster_(cluster), opts_(options), view_(std::move(initial)) {
  // The coordinator is wired up by the elastic trainer before any rank
  // thread exists; a bad initial view or event table is a programming
  // error, not recoverable input.
  MINSGD_CHECK(!view_.ranks.empty(), "ElasticCoordinator: empty initial view");
  MINSGD_CHECK(view_.generation >= 0, "ElasticCoordinator: generation ",
               view_.generation, " < 0");
  int prev = -1;
  for (int r : view_.ranks) {
    MINSGD_CHECK(r > prev, "ElasticCoordinator: view ranks not ascending");
    MINSGD_CHECK(r >= 0 && r < cluster.world(), "ElasticCoordinator: rank ",
                 r, " outside cluster world ", cluster.world());
    prev = r;
  }
  MINSGD_CHECK(opts_.max_rounds >= 1, "ElasticCoordinator: max_rounds ",
               opts_.max_rounds, " < 1");
  MINSGD_CHECK(opts_.round_timeout.count() > 0,
               "ElasticCoordinator: round_timeout <= 0");
  MINSGD_CHECK(opts_.rendezvous_timeout.count() > 0,
               "ElasticCoordinator: rendezvous_timeout <= 0");
  status_.assign(static_cast<std::size_t>(cluster.world()), Status::kStandby);
  for (int r : view_.ranks) {
    status_[static_cast<std::size_t>(r)] = Status::kActive;
  }
  events_.reserve(events.size());
  for (const ElasticEvent& ev : events) {
    MINSGD_CHECK(ev.rank >= 0 && ev.rank < cluster.world(),
                 "ElasticCoordinator: event rank ", ev.rank,
                 " outside cluster world ", cluster.world());
    MINSGD_CHECK(ev.at_iter >= 0, "ElasticCoordinator: event at_iter ",
                 ev.at_iter, " < 0");
    events_.push_back(PendingEvent{ev, false});
  }
  committed_view_ = view_;
  // Active ranks split the intra-op budget; standbys idle at 1 thread.
  cluster_.reshape_compute(view_.ranks);
  publish_metrics_locked();
  // The membership comm worker: a liveness watchdog that aborts the cluster
  // when a reconfiguration stalls, so ranks stuck in old-generation
  // transport unwind and reach the rendezvous.
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

ElasticCoordinator::ElasticCoordinator(SimCluster& cluster,
                                       MembershipView initial,
                                       std::vector<ElasticEvent> events)
    : ElasticCoordinator(cluster, std::move(initial), std::move(events),
                         Options{}) {}

ElasticCoordinator::~ElasticCoordinator() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

MembershipView ElasticCoordinator::view() const {
  std::lock_guard lk(mu_);
  return view_;
}

bool ElasticCoordinator::reconfig_due(std::int64_t next_iter) const {
  std::lock_guard lk(mu_);
  if (failure_pending_) return true;
  // An open epoch already consumed its triggering event (the first rank to
  // poll opened it), so the event table alone would send every later-polling
  // member into the next iteration's collectives — where the ranks already
  // parked at the rendezvous never show up. The epoch itself is the signal.
  if (epoch_open_) return true;
  for (const PendingEvent& pe : events_) {
    if (pe.consumed || pe.ev.at_iter > next_iter) continue;
    const auto st = status_[static_cast<std::size_t>(pe.ev.rank)];
    if (pe.ev.kind == ElasticEventKind::kJoin && st == Status::kStandby) {
      return true;
    }
    if (pe.ev.kind == ElasticEventKind::kLeave && st == Status::kActive) {
      return true;
    }
  }
  return false;
}

void ElasticCoordinator::report_failure(int phys) {
  {
    std::lock_guard lk(mu_);
    failure_pending_ = true;
    if (epoch_open_) epoch_fault_ = true;
  }
  // Wake peers blocked in old-generation transport so they can unwind into
  // the rendezvous. The next proposal's transport reset clears the abort.
  cluster_.abort("elastic: fault reported by rank " + std::to_string(phys));
  cv_.notify_all();
}

void ElasticCoordinator::report_death(int phys) {
  {
    std::lock_guard lk(mu_);
    status_[static_cast<std::size_t>(phys)] = Status::kDead;
    participants_.erase(phys);
    arrived_.erase(phys);
    failure_pending_ = true;
    if (epoch_open_) epoch_fault_ = true;
    const bool any_active =
        std::any_of(status_.begin(), status_.end(),
                    [](Status s) { return s == Status::kActive; });
    if (!any_active) {
      fail_run_locked("elastic: no surviving member holds training state");
    }
  }
  cluster_.abort("elastic: rank " + std::to_string(phys) + " failed");
  cv_.notify_all();
}

bool ElasticCoordinator::await_admission(int phys) {
  std::unique_lock lk(mu_);
  // A crashed rank re-entering here models its replacement process: the
  // slot is standby again and a later join event can re-admit it.
  status_[static_cast<std::size_t>(phys)] = Status::kStandby;
  cv_.wait(lk, [&] {
    return run_done_ || run_failed_ ||
           (epoch_open_ && participants_.count(phys) > 0);
  });
  return !(run_done_ || run_failed_);
}

void ElasticCoordinator::finish(int phys) {
  {
    std::lock_guard lk(mu_);
    run_done_ = true;
    // The finisher's thread is about to exit; withdraw it from membership
    // so a straggler's post-finish reconfiguration (say, a message lost in
    // the very last barrier) does not wait at the rendezvous for a rank
    // that will never arrive.
    status_[static_cast<std::size_t>(phys)] = Status::kStandby;
    participants_.erase(phys);
    arrived_.erase(phys);
  }
  cv_.notify_all();
}

bool ElasticCoordinator::run_failed() const {
  std::lock_guard lk(mu_);
  return run_failed_;
}

std::string ElasticCoordinator::fail_reason() const {
  std::lock_guard lk(mu_);
  return fail_reason_;
}

std::vector<ReconfigRecord> ElasticCoordinator::records() const {
  std::lock_guard lk(mu_);
  return records_;
}

int ElasticCoordinator::reconfigurations() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(records_.size());
}

void ElasticCoordinator::fail_run_locked(const std::string& reason) {
  if (run_failed_) return;
  run_failed_ = true;
  fail_reason_ = reason;
  cluster_.abort(reason);
  cv_.notify_all();
}

bool ElasticCoordinator::rendezvous_complete_locked() const {
  if (participants_.empty()) return false;
  return std::all_of(participants_.begin(), participants_.end(),
                     [&](int p) { return arrived_.count(p) > 0; });
}

bool ElasticCoordinator::close_complete_locked() const {
  if (proposed_attempt_ != attempt_) return false;
  // Only members still alive owe a report; a member that died mid-round is
  // caught by the proposal-liveness check at resolution.
  return std::all_of(proposal_.ranks.begin(), proposal_.ranks.end(),
                     [&](int r) {
                       return participants_.count(r) == 0 ||
                              close_reported_.count(r) > 0;
                     });
}

int ElasticCoordinator::leader_phys_locked() const {
  // Lowest surviving *old-view* member: joiners have no state and no
  // authority to reset the transport.
  for (int p : participants_) {
    if (view_.contains(p)) return p;
  }
  return -1;
}

MembershipView ElasticCoordinator::make_proposal_locked() const {
  MembershipView v;
  v.generation = view_.generation + 1;
  for (int p : participants_) {
    if (epoch_leavers_.count(p) == 0) v.ranks.push_back(p);
  }
  return v;  // std::set iteration keeps ranks ascending
}

void ElasticCoordinator::compute_resume_locked() {
  // Authoritative state: the furthest-trained surviving member of the old
  // view that stays in the proposal (ties break to the lowest rank). A
  // post-step crash can leave survivors one optimizer step apart, so resume
  // is max — laggards are healed by the state broadcast.
  resume_iter_ = -1;
  state_root_phys_ = -1;
  for (int r : proposal_.ranks) {
    if (!view_.contains(r)) continue;
    const auto it = arrived_.find(r);
    if (it == arrived_.end() || it->second < 0) continue;
    if (it->second > resume_iter_) {
      resume_iter_ = it->second;
      state_root_phys_ = r;
    }
  }
  if (state_root_phys_ < 0) {
    fail_run_locked("elastic: no state-bearing member in proposed view");
  }
}

void ElasticCoordinator::open_epoch_locked(std::int64_t trigger_iter) {
  epoch_open_ = true;
  ++epoch_seq_;
  attempt_ = 0;
  proposed_attempt_ = -1;
  epoch_t0_ = std::chrono::steady_clock::now();
  arrived_.clear();
  epoch_leavers_.clear();
  close_reported_.clear();
  wire_ok_ = true;
  epoch_fault_ = failure_pending_;
  participants_.clear();
  for (std::size_t p = 0; p < status_.size(); ++p) {
    if (status_[p] == Status::kActive) {
      participants_.insert(static_cast<int>(p));
    }
  }
  for (PendingEvent& pe : events_) {
    if (pe.consumed || pe.ev.at_iter > trigger_iter) continue;
    pe.consumed = true;
    const auto st = status_[static_cast<std::size_t>(pe.ev.rank)];
    // Once a member finished the run, parked standbys are already exiting;
    // a late join event is stale and must not pull in a departed thread.
    if (pe.ev.kind == ElasticEventKind::kJoin && st == Status::kStandby &&
        !run_done_) {
      participants_.insert(pe.ev.rank);
    } else if (pe.ev.kind == ElasticEventKind::kLeave &&
               st == Status::kActive) {
      epoch_leavers_.insert(pe.ev.rank);
    }
  }
  cv_.notify_all();  // pull due joiners out of await_admission
}

void ElasticCoordinator::publish_metrics_locked() const {
  auto& reg = obs::metrics();
  reg.gauge("cluster.membership.generation")
      .set(static_cast<double>(view_.generation));
  reg.gauge("cluster.membership.live_ranks")
      .set(static_cast<double>(view_.world()));
}

void ElasticCoordinator::resolve_attempt_locked() {
  ++decision_seq_;
  const bool proposal_live =
      std::all_of(proposal_.ranks.begin(), proposal_.ranks.end(),
                  [&](int r) { return participants_.count(r) > 0; });
  if (wire_ok_ && proposal_live) {
    view_ = proposal_;
    committed_view_ = proposal_;
    committed_resume_ = resume_iter_;
    committed_root_phys_ = state_root_phys_;
    commit_seq_ = decision_seq_;
    for (std::size_t p = 0; p < status_.size(); ++p) {
      const int phys = static_cast<int>(p);
      if (view_.contains(phys)) {
        status_[p] = Status::kActive;
      } else if (status_[p] == Status::kActive) {
        status_[p] = Status::kStandby;
      }
    }
    failure_pending_ = false;
    epoch_open_ = false;
    const auto pause = std::chrono::steady_clock::now() - epoch_t0_;
    ReconfigRecord rec;
    rec.generation = view_.generation;
    rec.at_iter = resume_iter_;
    rec.world = view_.world();
    rec.pause_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(pause).count();
    rec.attempts = attempt_ + 1;
    rec.fault_triggered = epoch_fault_;
    records_.push_back(rec);
    // One commit, one membership flight event: the thread that resolves the
    // attempt is the only one inside this branch, so the postmortem's
    // reconfig timeline has exactly one point per committed generation (and
    // the analyzer reads the new expected world from arg).
    MINSGD_FLIGHT(obs::FlightKind::kMembership, obs::FlightOp::kCommit,
                  Communicator::kMembershipChannel, 0, view_.generation, 0,
                  view_.world());
    publish_metrics_locked();
    auto& reg = obs::metrics();
    reg.counter("cluster.membership.reconfigs").add(1);
    reg.counter("cluster.membership.reconfig_ms")
        .add(rec.pause_ns / 1'000'000);
  } else {
    ++attempt_;
    if (attempt_ >= opts_.max_rounds) {
      fail_run_locked("elastic: reconfiguration attempt budget exhausted");
    }
  }
  cv_.notify_all();
}

template <typename Pred>
void ElasticCoordinator::wait_or_throw(
    std::unique_lock<std::mutex>& lk,
    std::chrono::steady_clock::time_point deadline, const char* what,
    Pred pred) {
  if (!cv_.wait_until(lk, deadline, pred)) {
    fail_run_locked(std::string("elastic: ") + what +
                    " deadline expired (a rank never reached the "
                    "rendezvous)");
    throw std::runtime_error(fail_reason_);
  }
}

bool ElasticCoordinator::wire_round(int phys, const MembershipView& proposal,
                                    std::int64_t round_id) {
  // In-band propose/ack/commit over the *proposed* generation's tag space
  // (membership channel), proving the new communicator live end-to-end
  // before the view commits. Any fault or payload mismatch costs this
  // attempt; the close barrier keeps all members' verdicts atomic.
  try {
    Communicator wc(cluster_, phys, proposal,
                    Communicator::kMembershipChannel);
    std::vector<float> expect;
    expect.reserve(proposal.ranks.size() + 4);
    expect.push_back(static_cast<float>(proposal.generation));
    expect.push_back(static_cast<float>(proposal.world()));
    expect.push_back(static_cast<float>(round_id / 65536));
    expect.push_back(static_cast<float>(round_id % 65536));
    for (int r : proposal.ranks) expect.push_back(static_cast<float>(r));
    std::vector<float> buf = expect;
    if (wc.rank() != 0) std::fill(buf.begin(), buf.end(), -1.0f);
    wc.broadcast(buf, /*root=*/0);  // PROPOSE
    if (buf != expect) return false;
    std::vector<float> token{1.0f};
    wc.reduce_sum(token, /*root=*/0);  // ACK
    if (wc.rank() == 0 &&
        token[0] != static_cast<float>(proposal.world())) {
      return false;
    }
    std::vector<float> commit{wc.rank() == 0 ? 1.0f : 0.0f};
    wc.broadcast(commit, /*root=*/0);  // COMMIT
    return commit[0] == 1.0f;
  } catch (const RankFailure&) {
    // This rank itself crashed mid-round: that is a death, not a failed
    // attempt — propagate so the caller reports it (peers stop waiting for
    // our close report once report_death drops us from the participants).
    throw;
  } catch (const FaultError&) {
    return false;
  }
}

ReconfigOutcome ElasticCoordinator::reconfigure(int phys,
                                                std::int64_t completed) {
  obs::ScopedSpan span;
  if (obs::tracer().enabled()) {
    span.start("cluster.reconfig", obs::cat::kCluster);
  }
  MINSGD_FLIGHT(obs::FlightKind::kArrive, obs::FlightOp::kRendezvous,
                Communicator::kMembershipChannel, 0, view().generation, 0,
                completed);
  std::unique_lock lk(mu_);
  if (run_failed_) return standby_outcome();
  if (!epoch_open_) open_epoch_locked(std::max<std::int64_t>(completed, 0));
  arrived_[phys] = completed;
  cv_.notify_all();

  for (;;) {
    if (run_failed_) return standby_outcome();
    const auto deadline = epoch_t0_ + 2 * opts_.rendezvous_timeout;
    const std::int64_t my_seq = decision_seq_;
    wait_or_throw(lk, deadline, "rendezvous", [&] {
      return run_failed_ || decision_seq_ > my_seq ||
             rendezvous_complete_locked();
    });
    if (run_failed_) return standby_outcome();

    if (decision_seq_ == my_seq) {
      const int leader = leader_phys_locked();
      if (leader < 0) {
        fail_run_locked("elastic: no surviving member holds training state");
        return standby_outcome();
      }
      if (phys == leader && proposed_attempt_ != attempt_) {
        // Every live rank is parked in the coordinator, so the transport is
        // quiescent: drain stale generations, re-arm the barrier, clear the
        // abort flag, and re-split the compute budget over the proposal.
        cluster_.reset_transport();
        proposal_ = make_proposal_locked();
        if (proposal_.ranks.empty()) {
          fail_run_locked("elastic: proposed view is empty");
          return standby_outcome();
        }
        cluster_.reshape_compute(proposal_.ranks);
        compute_resume_locked();
        if (run_failed_) return standby_outcome();
        round_id_ = epoch_seq_ * 64 + attempt_;
        proposed_attempt_ = attempt_;
        close_reported_.clear();
        wire_ok_ = true;
        cv_.notify_all();
      } else if (proposed_attempt_ != attempt_) {
        wait_or_throw(lk, deadline, "proposal", [&] {
          return run_failed_ || decision_seq_ > my_seq ||
                 proposed_attempt_ == attempt_;
        });
        if (run_failed_) return standby_outcome();
      }

      if (decision_seq_ == my_seq) {
        const MembershipView proposal = proposal_;
        const std::int64_t round = round_id_;
        bool ok = true;
        if (proposal.contains(phys)) {
          lk.unlock();
          ok = wire_round(phys, proposal, round);
          lk.lock();
        }
        if (decision_seq_ == my_seq) {
          if (!ok) wire_ok_ = false;
          close_reported_.insert(phys);
          cv_.notify_all();
          wait_or_throw(lk, deadline, "close", [&] {
            return run_failed_ || decision_seq_ > my_seq ||
                   close_complete_locked();
          });
          if (run_failed_) return standby_outcome();
          if (decision_seq_ == my_seq && close_complete_locked()) {
            resolve_attempt_locked();
          }
        }
      }
    }

    // A decision newer than my snapshot exists now; classify it.
    if (commit_seq_ > my_seq) {
      ReconfigOutcome out;
      out.view = committed_view_;
      out.resume_iter = committed_resume_;
      const int root_v = committed_view_.index_of(committed_root_phys_);
      out.state_root = root_v < 0 ? 0 : root_v;
      out.is_root = phys == committed_root_phys_;
      out.role = committed_view_.contains(phys) ? MemberRole::kMember
                                                : MemberRole::kStandby;
      if (obs::tracer().enabled()) {
        span.set_label("gen=" + std::to_string(committed_view_.generation));
      }
      return out;
    }
    // The attempt was retried; loop back into the rendezvous.
  }
}

void ElasticCoordinator::watchdog_loop() {
  std::unique_lock lk(mu_);
  while (!shutdown_) {
    if (!epoch_open_) {
      cv_.wait(lk, [&] { return shutdown_ || epoch_open_; });
      continue;
    }
    const auto deadline = epoch_t0_ + opts_.rendezvous_timeout;
    const std::int64_t seq = epoch_seq_;
    const bool changed = cv_.wait_until(lk, deadline, [&] {
      return shutdown_ || !epoch_open_ || epoch_seq_ != seq;
    });
    if (changed) continue;
    // The epoch stalled: wake ranks stuck in old-generation transport (a
    // recv with no deadline, a parked barrier) so they can unwind into the
    // rendezvous. The next proposal's transport reset clears this abort.
    lk.unlock();
    cluster_.abort("elastic: reconfiguration stalled past deadline");
    lk.lock();
    cv_.wait(lk, [&] { return shutdown_ || !epoch_open_ || epoch_seq_ != seq; });
  }
}

}  // namespace minsgd::comm
