// Async collective engine: nonblocking allreduce with a waitable handle.
//
// The paper's iteration is communication-bound at scale (Table 2, Figures
// 8-10); the standard fix — Goyal et al. 2017, Akiba et al. 2017 — is to
// aggregate gradients *while* backprop is still producing the earlier
// layers' gradients. This engine supplies the comm side of that overlap: a
// per-rank worker thread owning its own tag channel executes queued
// collectives strictly in FIFO order while the rank thread keeps computing.
//
// Determinism contract: work items run one at a time, in launch order. If
// every rank launches the same sequence of buckets (the bucketing assigner
// in src/train/overlap.hpp guarantees this — backward walks layers in a
// fixed order), then (a) collective tags match across ranks and (b) each
// bucket's floating-point reduction order is exactly what the blocking
// `Communicator::allreduce_sum` would produce on the same span, so overlap
// changes *when* communication happens, never *what* it computes.
//
// Failure contract: an exception inside a queued collective (CommTimeout,
// RankFailure, ClusterAborted, ...) is captured into its handle and
// rethrown by wait(). The failure is sticky — every later queued item fails
// fast with the same error instead of running, because a failed collective
// desynchronizes the channel's tag sequence and nothing after it can be
// trusted to match peers. No hang, no partial result: callers observe the
// error before any dependent state (the optimizer step) is touched.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <thread>

#include "comm/communicator.hpp"

namespace minsgd::comm {

class SimCluster;

namespace detail {
/// Shared completion state between one queued op and its handle(s).
struct AsyncOpState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;  // set iff the op failed
};
}  // namespace detail

/// Waitable result of allreduce_sum_async. Copyable (shared state); an
/// abandoned handle never blocks the engine.
class AllreduceHandle {
 public:
  AllreduceHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the op finished (successfully or not). Never blocks.
  bool done() const;

  /// Blocks until the op completes; rethrows the op's exception if it
  /// failed. An invalid (default-constructed) handle returns immediately.
  /// Safe to call repeatedly.
  void wait();

 private:
  friend class AsyncCollectiveEngine;
  explicit AllreduceHandle(std::shared_ptr<detail::AsyncOpState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::AsyncOpState> state_;
};

/// Per-rank comm worker: owns a Communicator on a secondary tag channel and
/// executes queued collectives in FIFO order on a dedicated thread.
///
/// Usage contract (mirrors MPI nonblocking collectives): every rank of the
/// cluster must launch the same sequence of async ops, and should wait on
/// all handles before abandoning the engine. The destructor drains the
/// queue; with the cluster aborted or a recv deadline armed, drain is
/// bounded even mid-fault.
class AsyncCollectiveEngine {
 public:
  AsyncCollectiveEngine(SimCluster& cluster, int rank);

  /// Engine over the same group (membership + generation) as `parent`, on
  /// the async channel — how gradient overlap follows an elastic
  /// reconfiguration onto the survivor communicator.
  explicit AsyncCollectiveEngine(const Communicator& parent);
  ~AsyncCollectiveEngine();

  AsyncCollectiveEngine(const AsyncCollectiveEngine&) = delete;
  AsyncCollectiveEngine& operator=(const AsyncCollectiveEngine&) = delete;

  /// Enqueues an in-place allreduce over `data` and returns immediately.
  /// `data` must stay alive and untouched until the handle reports done;
  /// the engine reads and writes it from the worker thread.
  AllreduceHandle allreduce_sum_async(
      std::span<float> data, AllreduceAlgo algo = AllreduceAlgo::kRing);

  int rank() const { return rank_; }

  /// Total wall-clock time the worker spent *executing* collectives —
  /// hidden plus exposed communication. Compare against the time a caller
  /// spent blocked in wait() to get the exposed fraction.
  std::int64_t busy_ns() const {
    return busy_ns_.load(std::memory_order_relaxed);
  }

  std::int64_t ops_completed() const {
    return ops_.load(std::memory_order_relaxed);
  }

  /// Stops accepting work, drains the queue, and joins the worker.
  /// Idempotent; called by the destructor.
  void shutdown();

 private:
  struct Work {
    std::span<float> data;
    AllreduceAlgo algo = AllreduceAlgo::kRing;
    std::shared_ptr<detail::AsyncOpState> state;
  };

  void worker_loop();

  Communicator comm_;  // channel-1 communicator; worker thread only
  int rank_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Work> queue_;
  bool stop_ = false;
  std::exception_ptr sticky_error_;  // first failure; poisons later ops

  std::atomic<std::int64_t> busy_ns_{0};
  std::atomic<std::int64_t> ops_{0};
  std::thread worker_;
};

}  // namespace minsgd::comm
