// SimCluster: an in-process cluster whose ranks are OS threads.
//
// The paper's experiments ran MPI programs across up to 2048 KNL nodes; the
// semantics that matter for reproduction — SPMD execution, message passing,
// bulk-synchronous collectives — are preserved here with threads standing in
// for nodes. Traffic is metered so the analytic alpha-beta cost model
// (src/perf) can attach wall-clock estimates for any real interconnect, and
// an optional FaultInjector (src/comm/fault.hpp) perturbs the send path so
// failure handling is testable. When any rank throws, the cluster aborts
// cooperatively: peers blocked in transport or the barrier unwind with
// ClusterAborted instead of hanging the run forever.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/fault.hpp"
#include "comm/mailbox.hpp"
#include "comm/traffic.hpp"
#include "obs/metrics.hpp"
#include "tensor/context.hpp"

namespace minsgd::comm {

/// A reusable, abortable rendezvous. std::barrier cannot be interrupted, so
/// a dead rank would park every peer in arrive_and_wait forever; this one
/// wakes them with ClusterAborted.
class AbortableBarrier {
 public:
  explicit AbortableBarrier(int parties);

  /// Blocks until `parties` threads arrive or abort() is called (throws
  /// ClusterAborted, including on entry after an abort).
  void arrive_and_wait();

  void abort();

  /// Re-arms after an aborted run. Only call when no thread is waiting.
  void reset();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool aborted_ = false;
};

/// Construction options for SimCluster. `compute_threads` is the *global*
/// intra-op thread budget the P rank threads split: each rank gets a
/// ComputeContext with max(1, compute_threads / world) threads, so the total
/// number of live worker threads never exceeds the budget regardless of
/// world size (the fix for P ranks oversubscribing one shared global pool).
/// 0 means ComputeContext::default_threads() (MINSGD_THREADS env var, else
/// hardware concurrency).
struct ClusterOptions {
  int world = 1;
  std::size_t compute_threads = 0;
};

class SimCluster {
 public:
  explicit SimCluster(int world) : SimCluster(ClusterOptions{world, 0}) {}
  explicit SimCluster(const ClusterOptions& options);

  int world() const { return world_; }

  /// The global intra-op thread budget the rank contexts split.
  std::size_t compute_budget() const { return compute_budget_; }

  /// The rank's private compute context (budget = max(1, global/world)).
  const ComputeContext& rank_context(int rank) const;

  /// Runs `fn(comm)` on every rank concurrently and joins. If any rank
  /// throws, the cluster aborts so every peer unwinds promptly; after the
  /// join, all rank errors are aggregated into one rethrown exception whose
  /// type is the first *root cause* by rank order (ranks that merely
  /// observed the abort are listed, but do not pick the type). May be
  /// called repeatedly: mailboxes are drained and the abort state reset on
  /// entry, so a failed run cannot poison the next one's tag matching.
  void run(const std::function<void(Communicator&)>& fn);

  /// Total / per-rank traffic since construction or reset_traffic().
  TrafficStats total_traffic() const { return meter_.total(); }
  TrafficStats rank_traffic(int rank) const {
    return meter_.rank_stats(static_cast<std::size_t>(rank));
  }
  /// Traffic attributed to one collective / all collectives with traffic.
  TrafficStats op_traffic(WireOp op) const { return meter_.op_stats(op); }
  std::vector<std::pair<std::string, TrafficStats>> traffic_by_op() const {
    return meter_.by_op();
  }
  void reset_traffic() { meter_.reset(); }

  /// Registers this cluster's traffic and fault counters as a source in
  /// `registry` under `<prefix>.` names (e.g. "cluster.traffic.bytes",
  /// "cluster.traffic.allreduce-ring.bytes", "cluster.faults.dropped").
  /// The destructor unregisters automatically.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "cluster");
  ~SimCluster();

  // -- fault model ---------------------------------------------------------
  /// Installs (or clears, with nullptr) a fault injector on the send path.
  /// Shared ownership lets a recovery driver keep one injector across
  /// checkpoint-restarted clusters, so a one-shot crash stays consumed.
  /// If no recv deadline was configured, installing an injector arms the
  /// default one (kFaultRecvTimeout) — with losses possible, "block
  /// forever" is no longer an acceptable recv contract.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);
  FaultInjector* fault_injector() const { return injector_.get(); }

  /// Per-rank / total fault statistics (zeros when no injector installed).
  FaultStats rank_faults(int rank) const;
  FaultStats total_faults() const;

  /// Deadline applied to every Communicator::recv. kNoTimeout (default)
  /// preserves the block-forever semantics of a perfect network.
  void set_recv_timeout(std::chrono::milliseconds timeout);
  std::chrono::milliseconds recv_timeout() const { return recv_timeout_; }

  static constexpr std::chrono::milliseconds kNoTimeout = Mailbox::kNoTimeout;
  static constexpr std::chrono::milliseconds kFaultRecvTimeout{30000};

  /// Cooperative abort: wakes every rank blocked in recv or barrier with
  /// ClusterAborted("<reason>"). Idempotent; the first reason wins.
  void abort(const std::string& reason);
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  std::string abort_reason() const;

 private:
  friend class Communicator;
  friend class ElasticCoordinator;

  Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }
  TrafficMeter& meter() { return meter_; }
  AbortableBarrier& barrier_sync() { return barrier_; }

  /// Drains every mailbox, re-arms the barrier, and clears the abort state
  /// — the run() preamble, exposed to the elastic coordinator so it can
  /// re-form the transport *mid-run*. Callers must guarantee quiescence:
  /// every live rank parked outside transport calls.
  void reset_transport();

  /// Re-splits the compute budget: ranks in `active` get max(1,
  /// budget/active.size()) threads, all others idle at 1. Replaces the
  /// ComputeContext objects, so references from rank_context() are
  /// invalidated — same quiescence requirement as reset_transport().
  void reshape_compute(const std::vector<int>& active);

  int world_;
  std::size_t compute_budget_;
  std::vector<std::unique_ptr<ComputeContext>> rank_contexts_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TrafficMeter meter_;
  AbortableBarrier barrier_;
  std::shared_ptr<FaultInjector> injector_;
  std::chrono::milliseconds recv_timeout_ = kNoTimeout;
  bool timeout_configured_ = false;

  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mu_;
  std::string abort_reason_;

  obs::MetricsRegistry* metrics_registry_ = nullptr;
  std::string metrics_source_name_;
};

}  // namespace minsgd::comm
