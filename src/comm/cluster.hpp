// SimCluster: an in-process cluster whose ranks are OS threads.
//
// The paper's experiments ran MPI programs across up to 2048 KNL nodes; the
// semantics that matter for reproduction — SPMD execution, message passing,
// bulk-synchronous collectives — are preserved here with threads standing in
// for nodes. Traffic is metered so the analytic alpha-beta cost model
// (src/perf) can attach wall-clock estimates for any real interconnect.
#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/mailbox.hpp"
#include "comm/traffic.hpp"

namespace minsgd::comm {

class SimCluster {
 public:
  explicit SimCluster(int world);

  int world() const { return world_; }

  /// Runs `fn(comm)` on every rank concurrently and joins. Any exception
  /// thrown by a rank is rethrown (the first one, by rank order) after all
  /// threads finish. May be called repeatedly; mailboxes must be drained
  /// (they are, if every send is received) between runs.
  void run(const std::function<void(Communicator&)>& fn);

  /// Total / per-rank traffic since construction or reset_traffic().
  TrafficStats total_traffic() const { return meter_.total(); }
  TrafficStats rank_traffic(int rank) const {
    return meter_.rank_stats(static_cast<std::size_t>(rank));
  }
  void reset_traffic() { meter_.reset(); }

 private:
  friend class Communicator;

  Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }
  TrafficMeter& meter() { return meter_; }
  std::barrier<>& barrier_sync() { return barrier_; }

  int world_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  TrafficMeter meter_;
  std::barrier<> barrier_;
};

}  // namespace minsgd::comm
