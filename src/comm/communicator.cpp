#include "comm/communicator.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/cluster.hpp"
#include "comm/fault.hpp"
#include "comm/membership.hpp"
#include "core/check.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace minsgd::comm {

const char* to_string(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kStar: return "star";
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kTree: return "tree";
    case AllreduceAlgo::kRecursiveHalving: return "rec-halving-doubling";
  }
  return "?";
}

const char* to_string(WireOp op) {
  switch (op) {
    case WireOp::kP2P: return "p2p";
    case WireOp::kBroadcast: return "broadcast";
    case WireOp::kReduce: return "reduce";
    case WireOp::kAllgather: return "allgather";
    case WireOp::kAllreduceStar: return "allreduce-star";
    case WireOp::kAllreduceRing: return "allreduce-ring";
    case WireOp::kAllreduceTree: return "allreduce-tree";
    case WireOp::kAllreduceRhd: return "allreduce-rhd";
    case WireOp::kCount: break;
  }
  return "?";
}

namespace {

WireOp wire_op(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kStar: return WireOp::kAllreduceStar;
    case AllreduceAlgo::kRing: return WireOp::kAllreduceRing;
    case AllreduceAlgo::kTree: return WireOp::kAllreduceTree;
    case AllreduceAlgo::kRecursiveHalving: return WireOp::kAllreduceRhd;
  }
  return WireOp::kP2P;
}

obs::FlightOp flight_op(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kStar: return obs::FlightOp::kAllreduceStar;
    case AllreduceAlgo::kRing: return obs::FlightOp::kAllreduceRing;
    case AllreduceAlgo::kTree: return obs::FlightOp::kAllreduceTree;
    case AllreduceAlgo::kRecursiveHalving: return obs::FlightOp::kAllreduceRhd;
  }
  return obs::FlightOp::kNone;
}

}  // namespace

Communicator::Communicator(SimCluster& cluster, int rank, int channel)
    : cluster_(cluster), rank_(rank), phys_(rank) {
  // Construction is cluster-internal (SimCluster::run, the async engine);
  // a bad rank or channel is a wiring bug, not recoverable input.
  MINSGD_CHECK(rank >= 0 && rank < cluster.world(),
               "Communicator: rank ", rank, " outside world ",
               cluster.world());
  MINSGD_CHECK(channel >= 0 && channel < kMaxChannels,
               "Communicator: channel ", channel, " outside [0, ",
               kMaxChannels, ")");
  channel_ = channel;
  tag_base_ = kCollectiveBase + channel * kChannelStride;
}

Communicator::Communicator(SimCluster& cluster, int physical_rank,
                           const MembershipView& view, int channel)
    : cluster_(cluster),
      rank_(view.index_of(physical_rank)),
      members_(view.ranks),
      phys_(physical_rank),
      generation_(view.generation) {
  MINSGD_CHECK(rank_ >= 0, "Communicator: physical rank ", physical_rank,
               " not a member of generation ", view.generation);
  MINSGD_CHECK(channel >= 0 && channel < kMaxChannels,
               "Communicator: channel ", channel, " outside [0, ",
               kMaxChannels, ")");
  MINSGD_CHECK(generation_ >= 0 && generation_ < kMaxGenerations,
               "Communicator: generation ", generation_, " outside [0, ",
               kMaxGenerations, ")");
  int prev = -1;
  for (int r : members_) {
    MINSGD_CHECK(r > prev && r >= 0 && r < cluster.world(),
                 "Communicator: view ranks must be ascending physical "
                 "ranks, got ", r);
    prev = r;
  }
  channel_ = channel;
  tag_base_ = kCollectiveBase + channel * kChannelStride +
              generation_ * kGenerationStride;
}

Communicator::Communicator(const Communicator& base, int channel)
    : cluster_(base.cluster_),
      rank_(base.rank_),
      members_(base.members_),
      phys_(base.phys_),
      generation_(base.generation_) {
  MINSGD_CHECK(channel >= 0 && channel < kMaxChannels,
               "Communicator: channel ", channel, " outside [0, ",
               kMaxChannels, ")");
  channel_ = channel;
  tag_base_ = kCollectiveBase + channel * kChannelStride +
              generation_ * kGenerationStride;
}

int Communicator::world() const {
  return members_.empty() ? cluster_.world()
                          : static_cast<int>(members_.size());
}

const ComputeContext& Communicator::ctx() const {
  return cluster_.rank_context(phys_);
}

void Communicator::send(int dst, std::int64_t tag,
                        std::span<const float> data) {
  // Tag-space discipline: non-negative, and below the end of the
  // generation-prefixed channelized collective space. P2P callers must stay
  // under kCollectiveBase; the only tags at or above it are minted by
  // next_collective_tag (lint rule `collective-tag` keeps it that way).
  MINSGD_CHECK(tag >= 0 &&
                   tag < kCollectiveBase + kMaxGenerations * kGenerationStride,
               "Communicator::send: tag ", tag, " outside the tag space");
  if (dst < 0 || dst >= world()) {
    throw std::invalid_argument("Communicator::send: bad destination");
  }
  if (dst == rank_) {
    throw std::invalid_argument("Communicator::send: self-send not allowed");
  }
  if (cluster_.aborted()) {
    throw ClusterAborted("Communicator::send: " + cluster_.abort_reason());
  }
  // The wire is addressed by physical rank: group communicators translate
  // their dense virtual ranks here, so mailboxes, the fault injector, and
  // the traffic meter all keep one identity per OS thread.
  const int dphys = to_phys(dst);
  Message msg{phys_, tag, std::vector<float>(data.begin(), data.end())};
  auto* injector = cluster_.fault_injector();
  SendAction action = SendAction::kDeliver;
  if (injector) {
    // May throw RankFailure (injected crash), sleep (straggler stall), or
    // corrupt the payload in place.
    action = injector->on_send(phys_, dphys, tag, msg.payload);
  }
  // Dropped and duplicated messages still went on the wire: the meter
  // counts what the sender emitted, not what arrived.
  cluster_.meter().record_send(static_cast<std::size_t>(phys_),
                               static_cast<std::int64_t>(data.size()) * 4,
                               op_);
  if (action == SendAction::kDrop) return;
  if (action == SendAction::kDeliverTwice) {
    cluster_.meter().record_send(static_cast<std::size_t>(phys_),
                                 static_cast<std::int64_t>(data.size()) * 4,
                                 op_);
    cluster_.mailbox(dphys).deliver(msg);
  }
  cluster_.mailbox(dphys).deliver(std::move(msg));
}

std::vector<float> Communicator::recv(int src, std::int64_t tag) {
  return recv_for(src, tag, cluster_.recv_timeout());
}

std::vector<float> Communicator::recv_for(int src, std::int64_t tag,
                                          std::chrono::milliseconds timeout) {
  MINSGD_CHECK(tag >= 0 &&
                   tag < kCollectiveBase + kMaxGenerations * kGenerationStride,
               "Communicator::recv: tag ", tag, " outside the tag space");
  if (src < 0 || src >= world()) {
    throw std::invalid_argument("Communicator::recv: bad source");
  }
  const int sphys = to_phys(src);
  Mailbox& mb = cluster_.mailbox(phys_);
  Message msg;
  switch (mb.take_for(sphys, tag, timeout, msg)) {
    case Mailbox::TakeStatus::kOk:
      return std::move(msg.payload);
    case Mailbox::TakeStatus::kTimeout:
      // The black box records the hang before the unwind starts: which tag
      // this rank starved on, and from whom, survives in the postmortem
      // even if no peer ever learns about the timeout.
      MINSGD_FLIGHT(obs::FlightKind::kFault, obs::FlightOp::kTimeout,
                    channel_, tag, generation_, 0, sphys);
      throw CommTimeout(phys_, sphys, tag, timeout, mb.snapshot());
    case Mailbox::TakeStatus::kAborted:
      throw ClusterAborted("Communicator::recv: " + cluster_.abort_reason());
  }
  throw std::logic_error("Communicator::recv: unreachable");
}

void Communicator::maybe_stall() {
  // Only the outermost collective stalls (op_ still unclaimed): the nested
  // collectives of allreduce-tree model one late arrival, not three.
  if (op_ != WireOp::kP2P) return;
  if (auto* injector = cluster_.fault_injector()) {
    injector->on_collective_enter(phys_);
  }
}

void Communicator::barrier() {
  obs::ScopedSpan sp("barrier", obs::cat::kComm);
  if (members_.empty()) {
    maybe_stall();
    // The message-free path has no wire tag; the barrier counter stands in
    // (all ranks run the same barrier sequence, so counters align).
    const std::int64_t id = barrier_seq_++;
    MINSGD_FLIGHT(obs::FlightKind::kCollBegin, obs::FlightOp::kBarrier,
                  channel_, id, generation_, 0, 0);
    cluster_.barrier_sync().arrive_and_wait();
    MINSGD_FLIGHT(obs::FlightKind::kCollEnd, obs::FlightOp::kBarrier,
                  channel_, id, generation_, 0, 0);
    return;
  }
  // The shared-memory cluster barrier is sized to the full world, so a
  // group rendezvous must go over the wire: a 1-float tree allreduce in the
  // group's own tag space. (Test Traffic.BarrierIsFree pins the full-world
  // barrier to the message-free path above.)
  float token = 0.0f;
  allreduce_sum(std::span<float>(&token, 1), AllreduceAlgo::kTree);
}

void Communicator::broadcast(std::span<float> data, int root) {
  const int p = world();
  if (p == 1) return;
  maybe_stall();
  OpScope op(*this, WireOp::kBroadcast);
  obs::ScopedSpan sp("broadcast", obs::cat::kComm);
  sp.set_bytes(static_cast<std::int64_t>(data.size()) * 4);
  const std::int64_t tag = next_collective_tag();
  MINSGD_FLIGHT(obs::FlightKind::kCollBegin, obs::FlightOp::kBroadcast,
                channel_, tag, generation_,
                static_cast<std::int64_t>(data.size()) * 4, root);
  const int vrank = (rank_ - root + p) % p;
  // Receive from parent (the peer that differs in the lowest set bit).
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int vsrc = vrank - mask;
      auto payload = recv((vsrc + root) % p, tag);
      // All ranks pass same-shaped buffers to a collective; a mismatch means
      // the SPMD program diverged, which no rank can recover from.
      MINSGD_CHECK(payload.size() == data.size(),
                   "broadcast: payload size mismatch (", payload.size(),
                   " vs ", data.size(), ")");
      std::copy(payload.begin(), payload.end(), data.begin());
      break;
    }
    mask <<= 1;
  }
  // Forward to children.
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & mask) == 0 && vrank + mask < p) {
      send(((vrank + mask) + root) % p, tag, data);
    }
    mask >>= 1;
  }
  MINSGD_FLIGHT(obs::FlightKind::kCollEnd, obs::FlightOp::kBroadcast,
                channel_, tag, generation_, 0, root);
}

void Communicator::reduce_sum(std::span<float> data, int root) {
  const int p = world();
  if (p == 1) return;
  maybe_stall();
  OpScope op(*this, WireOp::kReduce);
  obs::ScopedSpan sp("reduce", obs::cat::kComm);
  sp.set_bytes(static_cast<std::int64_t>(data.size()) * 4);
  const std::int64_t tag = next_collective_tag();
  MINSGD_FLIGHT(obs::FlightKind::kCollBegin, obs::FlightOp::kReduce,
                channel_, tag, generation_,
                static_cast<std::int64_t>(data.size()) * 4, root);
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      if (vrank + mask < p) {
        auto payload = recv(((vrank + mask) + root) % p, tag);
        MINSGD_CHECK(payload.size() == data.size(),
                     "reduce_sum: payload size mismatch (", payload.size(),
                     " vs ", data.size(), ")");
        axpy(1.0f, payload, data);
      }
    } else {
      send(((vrank - mask) + root) % p, tag, data);
      break;
    }
    mask <<= 1;
  }
  MINSGD_FLIGHT(obs::FlightKind::kCollEnd, obs::FlightOp::kReduce,
                channel_, tag, generation_, 0, root);
}

void Communicator::allreduce_sum(std::span<float> data, AllreduceAlgo algo) {
  if (world() == 1) return;
  maybe_stall();
  OpScope op(*this, wire_op(algo));
  obs::ScopedSpan sp;
  if (obs::tracer().enabled()) {
    sp.start(std::string("allreduce.") + to_string(algo), obs::cat::kComm);
    sp.set_bytes(static_cast<std::int64_t>(data.size()) * 4);
    sp.set_label(to_string(algo));
  }
  // The first tag the algorithm will mint identifies this allreduce across
  // ranks; the FlightOp keeps the wrapper distinct from a nested collective
  // that reuses the same tag (allreduce-tree's inner reduce).
  const std::int64_t tag = tag_base_ + seq_;
  MINSGD_FLIGHT(obs::FlightKind::kCollBegin, flight_op(algo), channel_, tag,
                generation_, static_cast<std::int64_t>(data.size()) * 4, 0);
  switch (algo) {
    case AllreduceAlgo::kStar: allreduce_star(data); break;
    case AllreduceAlgo::kRing: allreduce_ring(data); break;
    case AllreduceAlgo::kTree: allreduce_tree(data); break;
    case AllreduceAlgo::kRecursiveHalving: allreduce_rhd(data); break;
  }
  MINSGD_FLIGHT(obs::FlightKind::kCollEnd, flight_op(algo), channel_, tag,
                generation_, 0, 0);
}

void Communicator::allgather(std::span<const float> local,
                             std::span<float> out) {
  const int p = world();
  const std::size_t n = local.size();
  if (out.size() != n * static_cast<std::size_t>(p)) {
    throw std::invalid_argument("allgather: out must be world * local");
  }
  maybe_stall();
  OpScope op(*this, WireOp::kAllgather);
  obs::ScopedSpan sp("allgather", obs::cat::kComm);
  sp.set_bytes(static_cast<std::int64_t>(n) * 4);
  const std::int64_t tag = next_collective_tag();
  MINSGD_FLIGHT(obs::FlightKind::kCollBegin, obs::FlightOp::kAllgather,
                channel_, tag, generation_,
                static_cast<std::int64_t>(n) * 4, 0);
  std::copy(local.begin(), local.end(),
            out.begin() + static_cast<std::ptrdiff_t>(n) * rank_);
  // Simple ring rotation: world-1 steps, each step pass the slot you just
  // received (starting with your own).
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  int cur = rank_;
  for (int step = 0; step < p - 1; ++step) {
    send(right, tag + step,
         out.subspan(static_cast<std::size_t>(cur) * n, n));
    auto payload = recv(left, tag + step);
    cur = (cur - 1 + p) % p;
    std::copy(payload.begin(), payload.end(),
              out.begin() + static_cast<std::ptrdiff_t>(cur) * n);
  }
  seq_ += p;  // consumed p-1 step tags; keep counters aligned across ranks
  MINSGD_FLIGHT(obs::FlightKind::kCollEnd, obs::FlightOp::kAllgather,
                channel_, tag, generation_, 0, 0);
}

void Communicator::allreduce_star(std::span<float> data) {
  const std::int64_t tag = next_collective_tag();
  if (rank_ == 0) {
    for (int src = 1; src < world(); ++src) {
      auto payload = recv(src, tag);
      axpy(1.0f, payload, data);
    }
    for (int dst = 1; dst < world(); ++dst) send(dst, tag + 1, data);
  } else {
    send(0, tag, data);
    auto payload = recv(0, tag + 1);
    std::copy(payload.begin(), payload.end(), data.begin());
  }
  ++seq_;  // the reply tag
}

void Communicator::allreduce_tree(std::span<float> data) {
  reduce_sum(data, 0);
  broadcast(data, 0);
}

void Communicator::allreduce_ring(std::span<float> data) {
  const int p = world();
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  if (n < p) {
    // Degenerate tiny payload: tree is simpler and correct.
    allreduce_tree(data);
    return;
  }
  const std::int64_t base_tag = next_collective_tag();
  seq_ += 2 * (p - 1);  // reserve a tag per step

  // Chunk c covers [c*n/p, (c+1)*n/p).
  auto chunk_begin = [&](int c) { return static_cast<std::int64_t>(c) * n / p; };
  auto chunk = [&](int c) {
    const std::int64_t b = chunk_begin(c);
    const std::int64_t e = static_cast<std::int64_t>(c + 1) * n / p;
    return data.subspan(static_cast<std::size_t>(b),
                        static_cast<std::size_t>(e - b));
  };

  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;

  // Reduce-scatter: after p-1 steps, rank r owns the full sum of chunk
  // (r+1) mod p.
  for (int step = 0; step < p - 1; ++step) {
    const int send_c = (rank_ - step + p) % p;
    const int recv_c = (rank_ - step - 1 + p) % p;
    send(right, base_tag + step, chunk(send_c));
    auto payload = recv(left, base_tag + step);
    axpy(1.0f, payload, chunk(recv_c));
  }
  // Allgather: circulate the completed chunks.
  for (int step = 0; step < p - 1; ++step) {
    const int send_c = (rank_ + 1 - step + p) % p;
    const int recv_c = (rank_ - step + p) % p;
    send(right, base_tag + (p - 1) + step, chunk(send_c));
    auto payload = recv(left, base_tag + (p - 1) + step);
    auto dst = chunk(recv_c);
    std::copy(payload.begin(), payload.end(), dst.begin());
  }
}

void Communicator::allreduce_rhd(std::span<float> data) {
  const int p = world();
  // Largest power of two <= p.
  int p2 = 1;
  while (p2 * 2 <= p) p2 *= 2;
  const int rem = p - p2;
  const std::int64_t tag = next_collective_tag();
  seq_ += 64;  // generous reservation: log2(p) phases + remainder traffic

  // Fold the surplus ranks into the first `rem` ranks.
  bool active = true;
  if (rank_ >= p2) {
    send(rank_ - p2, tag, data);
    active = false;
  } else if (rank_ < rem) {
    auto payload = recv(rank_ + p2, tag);
    axpy(1.0f, payload, data);
  }

  if (active) {
    // Recursive doubling on the p2 active ranks: exchange with partner at
    // distance `mask`, both sides add. (This is the halving-doubling
    // pattern specialized to whole-vector exchange; bandwidth-optimal
    // variants split the vector, which kTree/kRing already cover.)
    for (int mask = 1; mask < p2; mask <<= 1) {
      const int partner = rank_ ^ mask;
      send(partner, tag + 1 + mask, data);
      auto payload = recv(partner, tag + 1 + mask);
      axpy(1.0f, payload, data);
    }
  }

  // Unfold: send results back to the surplus ranks.
  if (rank_ < rem) {
    send(rank_ + p2, tag + 2, data);
  } else if (rank_ >= p2) {
    auto payload = recv(rank_ - p2, tag + 2);
    std::copy(payload.begin(), payload.end(), data.begin());
  }
}

}  // namespace minsgd::comm
