#include "comm/fault.hpp"

#include <bit>
#include <sstream>
#include <thread>

#include "obs/flight.hpp"

namespace minsgd::comm {
namespace {

std::string format_timeout(int rank, int peer, std::int64_t tag,
                           std::chrono::milliseconds deadline,
                           const std::vector<PendingMessage>& pending) {
  std::ostringstream os;
  os << "CommTimeout: rank " << rank << " waited " << deadline.count()
     << " ms for (src " << peer << ", tag " << tag << "); queue holds "
     << pending.size() << " unmatched message(s)";
  const std::size_t shown = pending.size() < 8 ? pending.size() : 8;
  for (std::size_t i = 0; i < shown; ++i) {
    os << (i == 0 ? ": " : ", ") << "(src " << pending[i].src << ", tag "
       << pending[i].tag << ", " << pending[i].numel << " floats)";
  }
  if (shown < pending.size()) os << ", ...";
  return os.str();
}

void validate(const FaultPlan& plan, int world) {
  auto check_prob = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                  " outside [0, 1]");
    }
  };
  check_prob(plan.drop_prob, "drop_prob");
  check_prob(plan.delay_prob, "delay_prob");
  check_prob(plan.duplicate_prob, "duplicate_prob");
  check_prob(plan.corrupt_prob, "corrupt_prob");
  if (plan.crash_rank >= world) {
    throw std::invalid_argument("FaultPlan: crash_rank out of range");
  }
  if (plan.delay.count() < 0) {
    throw std::invalid_argument("FaultPlan: negative delay");
  }
  if (plan.crash_at_send < 0) {
    throw std::invalid_argument("FaultPlan: crash_at_send < 0");
  }
  if (plan.straggler_rank >= world) {
    throw std::invalid_argument("FaultPlan: straggler_rank out of range");
  }
  if (plan.straggler_stall.count() < 0) {
    throw std::invalid_argument("FaultPlan: negative straggler_stall");
  }
}

}  // namespace

CommTimeout::CommTimeout(int rank, int peer, std::int64_t tag,
                         std::chrono::milliseconds deadline,
                         std::vector<PendingMessage> pending)
    : FaultError(format_timeout(rank, peer, tag, deadline, pending)),
      rank_(rank),
      peer_(peer),
      tag_(tag),
      pending_(std::move(pending)) {}

CommTimeout::CommTimeout(int rank, int peer, std::int64_t tag,
                         std::vector<PendingMessage> pending,
                         const std::string& what)
    : FaultError(what),
      rank_(rank),
      peer_(peer),
      tag_(tag),
      pending_(std::move(pending)) {}

FaultInjector::FaultInjector(FaultPlan plan, int world) : plan_(plan) {
  if (world <= 0) throw std::invalid_argument("FaultInjector: world <= 0");
  validate(plan_, world);
  streams_.reserve(static_cast<std::size_t>(world));
  const Rng root(plan_.seed);
  for (int r = 0; r < world; ++r) {
    streams_.push_back(root.split(static_cast<std::uint64_t>(r)));
  }
  stats_.resize(static_cast<std::size_t>(world));
}

SendAction FaultInjector::on_send(int src, int dst, std::int64_t tag,
                                  std::vector<float>& payload) {
  (void)dst;
  (void)tag;
  std::chrono::milliseconds sleep_for{0};
  SendAction action = SendAction::kDeliver;
  {
    std::lock_guard lk(mu_);
    auto& st = stats_[static_cast<std::size_t>(src)];
    auto& rng = streams_[static_cast<std::size_t>(src)];
    const std::int64_t count = st.sends_seen++;

    if (src == plan_.crash_rank && !crash_fired_ &&
        count >= plan_.crash_at_send) {
      crash_fired_ = true;
      ++st.crashes;
      MINSGD_FLIGHT(obs::FlightKind::kFault, obs::FlightOp::kCrashed, 0, tag,
                    0, 0, dst);
      throw RankFailure(src, "RankFailure: rank " + std::to_string(src) +
                                 " crashed (injected at send #" +
                                 std::to_string(count) + ")");
    }
    // Draw each stream exactly when its fault is armed, so a plan's action
    // sequence is a pure function of (seed, rank, send index).
    if (plan_.drop_prob > 0.0 && rng.uniform() < plan_.drop_prob) {
      ++st.dropped;
      MINSGD_FLIGHT(obs::FlightKind::kFault, obs::FlightOp::kDrop, 0, tag,
                    0, 0, dst);
      return SendAction::kDrop;
    }
    if (plan_.corrupt_prob > 0.0 && rng.uniform() < plan_.corrupt_prob &&
        !payload.empty()) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::uint64_t>(payload.size())));
      // Flip the sign bit: a single-bit wire error that survives any
      // magnitude-based sanity check.
      payload[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(
                                            payload[i]) ^
                                        0x80000000u);
      ++st.corrupted;
      MINSGD_FLIGHT(obs::FlightKind::kFault, obs::FlightOp::kCorrupt, 0, tag,
                    0, 0, dst);
    }
    if (plan_.delay_prob > 0.0 && rng.uniform() < plan_.delay_prob) {
      ++st.delayed;
      MINSGD_FLIGHT(obs::FlightKind::kFault, obs::FlightOp::kDelay, 0, tag,
                    0, plan_.delay.count(), dst);
      sleep_for = plan_.delay;
    }
    if (plan_.duplicate_prob > 0.0 && rng.uniform() < plan_.duplicate_prob) {
      ++st.duplicated;
      MINSGD_FLIGHT(obs::FlightKind::kFault, obs::FlightOp::kDuplicate, 0,
                    tag, 0, 0, dst);
      action = SendAction::kDeliverTwice;
    }
  }
  if (sleep_for.count() > 0) std::this_thread::sleep_for(sleep_for);
  return action;
}

void FaultInjector::on_collective_enter(int phys) {
  std::chrono::milliseconds stall{0};
  {
    std::lock_guard lk(mu_);
    if (phys == plan_.straggler_rank && plan_.straggler_stall.count() > 0) {
      ++stats_[static_cast<std::size_t>(phys)].stalls;
      stall = plan_.straggler_stall;
    }
  }
  if (stall.count() > 0) {
    MINSGD_FLIGHT(obs::FlightKind::kFault, obs::FlightOp::kStall, 0, 0, 0,
                  stall.count(), phys);
    std::this_thread::sleep_for(stall);
  }
}

FaultStats FaultInjector::rank_stats(int rank) const {
  std::lock_guard lk(mu_);
  return stats_.at(static_cast<std::size_t>(rank));
}

FaultStats FaultInjector::total() const {
  std::lock_guard lk(mu_);
  FaultStats t;
  for (const auto& s : stats_) t += s;
  return t;
}

bool FaultInjector::crash_pending() const {
  std::lock_guard lk(mu_);
  return plan_.crash_rank >= 0 && !crash_fired_;
}

}  // namespace minsgd::comm
