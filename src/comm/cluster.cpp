#include "comm/cluster.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/flight.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"

namespace minsgd::comm {

namespace {

int checked_world(int world) {
  if (world <= 0) throw std::invalid_argument("SimCluster: world <= 0");
  return world;
}

struct RankError {
  int rank = -1;
  std::exception_ptr error;
  std::string what;
  bool is_abort_victim = false;  // ClusterAborted: a casualty, not a cause
};

std::string describe(const std::exception_ptr& e, bool* is_abort_victim) {
  try {
    std::rethrow_exception(e);
  } catch (const ClusterAborted& ex) {
    *is_abort_victim = true;
    return ex.what();
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Rethrows with every rank's error in the message but the dynamic type of
/// the first root cause (so callers' catch clauses keep working: a rank
/// that threw invalid_argument still surfaces as invalid_argument).
[[noreturn]] void rethrow_aggregated(const std::vector<RankError>& errors) {
  const RankError* first_cause = nullptr;
  std::ostringstream os;
  int causes = 0;
  for (const auto& e : errors) {
    if (!e.is_abort_victim) {
      if (!first_cause) first_cause = &e;
      ++causes;
    }
  }
  // Pure-victim case (abort without a recorded cause, e.g. external abort):
  // fall back to the first error.
  if (!first_cause) first_cause = &errors.front();

  if (errors.size() == 1) std::rethrow_exception(errors.front().error);

  os << errors.size() << " rank(s) failed (" << causes << " root cause(s))";
  for (const auto& e : errors) {
    os << "; [rank " << e.rank << (e.is_abort_victim ? ", aborted" : "")
       << "] " << e.what;
  }
  const std::string msg = os.str();
  try {
    std::rethrow_exception(first_cause->error);
  } catch (const RankFailure& ex) {
    throw RankFailure(ex.rank(), msg);
  } catch (const CommTimeout& ex) {
    throw CommTimeout(ex.rank(), ex.peer(), ex.tag(), ex.pending(), msg);
  } catch (const ClusterAborted&) {
    throw ClusterAborted(msg);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(msg);
  } catch (const std::domain_error&) {
    throw std::domain_error(msg);
  } catch (const std::length_error&) {
    throw std::length_error(msg);
  } catch (const std::out_of_range&) {
    throw std::out_of_range(msg);
  } catch (const std::logic_error&) {
    throw std::logic_error(msg);
  } catch (const std::runtime_error&) {
    throw std::runtime_error(msg);
  } catch (...) {
    throw std::runtime_error(msg);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// AbortableBarrier

AbortableBarrier::AbortableBarrier(int parties) : parties_(parties) {
  if (parties <= 0) {
    throw std::invalid_argument("AbortableBarrier: parties <= 0");
  }
}

void AbortableBarrier::arrive_and_wait() {
  std::unique_lock lk(mu_);
  if (aborted_) throw ClusterAborted("barrier: cluster aborted");
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  const std::uint64_t gen = generation_;
  cv_.wait(lk, [&] { return generation_ != gen || aborted_; });
  if (generation_ == gen && aborted_) {
    throw ClusterAborted("barrier: cluster aborted");
  }
}

void AbortableBarrier::abort() {
  {
    std::lock_guard lk(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void AbortableBarrier::reset() {
  std::lock_guard lk(mu_);
  aborted_ = false;
  waiting_ = 0;
}

// ---------------------------------------------------------------------------
// SimCluster

SimCluster::SimCluster(const ClusterOptions& options)
    : world_(checked_world(options.world)),
      compute_budget_(options.compute_threads != 0
                          ? options.compute_threads
                          : ComputeContext::default_threads()),
      meter_(static_cast<std::size_t>(world_)),
      barrier_(world_) {
  // Any cluster in the process makes MINSGD_CHECK failures dump the flight
  // recorder: an invariant violation mid-collective is exactly the case
  // where the cross-rank timeline matters and the abort would discard it.
  obs::arm_postmortem_on_check_failure();
  // Split the global intra-op budget across ranks so total live worker
  // threads stay <= budget no matter how large the simulated world is.
  const std::size_t per_rank = std::max<std::size_t>(
      1, compute_budget_ / static_cast<std::size_t>(world_));
  rank_contexts_.reserve(static_cast<std::size_t>(world_));
  mailboxes_.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    rank_contexts_.push_back(std::make_unique<ComputeContext>(per_rank));
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void SimCluster::reset_transport() {
  for (auto& mb : mailboxes_) mb->clear();
  barrier_.reset();
  aborted_.store(false, std::memory_order_release);
  std::lock_guard lk(abort_mu_);
  abort_reason_.clear();
}

void SimCluster::reshape_compute(const std::vector<int>& active) {
  const std::size_t members = std::max<std::size_t>(1, active.size());
  const std::size_t per_rank =
      std::max<std::size_t>(1, compute_budget_ / members);
  std::vector<bool> is_active(static_cast<std::size_t>(world_), false);
  for (int r : active) is_active[static_cast<std::size_t>(r)] = true;
  for (int r = 0; r < world_; ++r) {
    const std::size_t want =
        is_active[static_cast<std::size_t>(r)] ? per_rank : 1;
    auto& ctx = rank_contexts_[static_cast<std::size_t>(r)];
    if (ctx->threads() != want) {
      ctx = std::make_unique<ComputeContext>(want);
    }
  }
}

const ComputeContext& SimCluster::rank_context(int rank) const {
  if (rank < 0 || rank >= world_) {
    throw std::invalid_argument("SimCluster::rank_context: rank out of range");
  }
  return *rank_contexts_[static_cast<std::size_t>(rank)];
}

SimCluster::~SimCluster() {
  if (metrics_registry_) {
    metrics_registry_->unregister_source(metrics_source_name_);
  }
}

void SimCluster::register_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) {
  if (metrics_registry_) {
    metrics_registry_->unregister_source(metrics_source_name_);
  }
  metrics_registry_ = &registry;
  metrics_source_name_ = prefix;
  registry.register_source(prefix, [this, prefix] {
    using Kind = obs::Sample::Kind;
    std::vector<obs::Sample> out;
    const auto t = total_traffic();
    out.push_back({prefix + ".traffic.messages",
                   static_cast<double>(t.messages), Kind::kCounter});
    out.push_back({prefix + ".traffic.bytes", static_cast<double>(t.bytes),
                   Kind::kCounter});
    for (const auto& [op, s] : traffic_by_op()) {
      out.push_back({prefix + ".traffic." + op + ".messages",
                     static_cast<double>(s.messages), Kind::kCounter});
      out.push_back({prefix + ".traffic." + op + ".bytes",
                     static_cast<double>(s.bytes), Kind::kCounter});
    }
    if (injector_) {
      const auto f = total_faults();
      out.push_back({prefix + ".faults.sends_seen",
                     static_cast<double>(f.sends_seen), Kind::kCounter});
      out.push_back({prefix + ".faults.dropped",
                     static_cast<double>(f.dropped), Kind::kCounter});
      out.push_back({prefix + ".faults.delayed",
                     static_cast<double>(f.delayed), Kind::kCounter});
      out.push_back({prefix + ".faults.duplicated",
                     static_cast<double>(f.duplicated), Kind::kCounter});
      out.push_back({prefix + ".faults.corrupted",
                     static_cast<double>(f.corrupted), Kind::kCounter});
      out.push_back({prefix + ".faults.crashes",
                     static_cast<double>(f.crashes), Kind::kCounter});
      out.push_back({prefix + ".faults.stalls",
                     static_cast<double>(f.stalls), Kind::kCounter});
    }
    // Intra-op pool activity summed across ranks: are the per-rank compute
    // budgets actually being exercised, and is work queuing up?
    std::size_t workers = 0;
    std::int64_t tasks = 0, depth = 0;
    for (const auto& c : rank_contexts_) {
      const PoolStats ps = c->pool_stats();
      workers += ps.workers;
      tasks += ps.tasks_executed;
      depth += ps.queue_depth;
    }
    out.push_back({prefix + ".pool.workers", static_cast<double>(workers),
                   Kind::kGauge});
    out.push_back({prefix + ".pool.tasks_executed", static_cast<double>(tasks),
                   Kind::kCounter});
    out.push_back({prefix + ".pool.queue_depth", static_cast<double>(depth),
                   Kind::kGauge});
    return out;
  });
}

void SimCluster::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  injector_ = std::move(injector);
  if (injector_ && !timeout_configured_) recv_timeout_ = kFaultRecvTimeout;
}

FaultStats SimCluster::rank_faults(int rank) const {
  if (rank < 0 || rank >= world_) {
    throw std::invalid_argument("SimCluster::rank_faults: rank out of range");
  }
  return injector_ ? injector_->rank_stats(rank) : FaultStats{};
}

FaultStats SimCluster::total_faults() const {
  return injector_ ? injector_->total() : FaultStats{};
}

void SimCluster::set_recv_timeout(std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0 && timeout != kNoTimeout) {
    throw std::invalid_argument("SimCluster::set_recv_timeout: timeout <= 0");
  }
  recv_timeout_ = timeout;
  timeout_configured_ = true;
}

void SimCluster::abort(const std::string& reason) {
  bool expected = false;
  if (aborted_.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    {
      std::lock_guard lk(abort_mu_);
      abort_reason_ = reason;
    }
    for (auto& mb : mailboxes_) mb->abort();
    barrier_.abort();
  }
}

std::string SimCluster::abort_reason() const {
  std::lock_guard lk(abort_mu_);
  return abort_reason_;
}

void SimCluster::run(const std::function<void(Communicator&)>& fn) {
  // A fresh run must not see leftovers of an aborted predecessor: stale
  // undelivered messages would match the new run's collective tags.
  reset_transport();

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world_));
  threads.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      // Every span this rank thread records lands in its own trace lane.
      obs::set_thread_rank(r);
      try {
        obs::ScopedSpan sp("rank", obs::cat::kCluster);
        Communicator comm(*this, r);
        fn(comm);
      } catch (const std::exception& e) {
        // The rank's last flight event marks the unwind, so the postmortem
        // shows who died first and from what, in timeline order.
        obs::FlightOp op = obs::FlightOp::kNone;
        if (dynamic_cast<const RankFailure*>(&e) != nullptr) {
          op = obs::FlightOp::kCrashed;
        } else if (dynamic_cast<const CommTimeout*>(&e) != nullptr) {
          op = obs::FlightOp::kTimeout;
        }
        MINSGD_FLIGHT(obs::FlightKind::kCrash, op, 0, 0, 0, 0, r);
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort("aborted by rank " + std::to_string(r) + ": " + e.what());
      } catch (...) {
        MINSGD_FLIGHT(obs::FlightKind::kCrash, obs::FlightOp::kNone, 0, 0, 0,
                      0, r);
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort("aborted by rank " + std::to_string(r) + ": unknown exception");
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<RankError> failed;
  for (int r = 0; r < world_; ++r) {
    auto& e = errors[static_cast<std::size_t>(r)];
    if (!e) continue;
    RankError re;
    re.rank = r;
    re.error = e;
    re.what = describe(e, &re.is_abort_victim);
    failed.push_back(std::move(re));
  }
  if (!failed.empty()) {
    // The black-box dump: every CommTimeout / RankFailure / ClusterAborted
    // unwind converges here with all rank threads joined, so one merged
    // postmortem.json captures the whole cluster's last events.
    obs::PostmortemInfo info;
    info.world = world_;
    info.reason = abort_reason();
    if (info.reason.empty()) info.reason = failed.front().what;
    for (const auto& re : failed) {
      info.rank_errors.emplace_back(re.rank, re.what);
    }
    obs::dump_postmortem(info);
    rethrow_aggregated(failed);
  }
}

}  // namespace minsgd::comm
