#include "comm/cluster.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

namespace minsgd::comm {

namespace {
int checked_world(int world) {
  if (world <= 0) throw std::invalid_argument("SimCluster: world <= 0");
  return world;
}
}  // namespace

SimCluster::SimCluster(int world)
    : world_(checked_world(world)),
      meter_(static_cast<std::size_t>(world_)),
      barrier_(world_) {
  mailboxes_.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void SimCluster::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world_));
  threads.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
        Communicator comm(*this, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace minsgd::comm
