// Mailbox: the per-rank message queue behind the simulated transport.
//
// Messages are float payloads tagged with (source, tag). take_for() blocks
// until a matching message arrives, the deadline expires, or the mailbox is
// aborted; matching is FIFO within a (source, tag) pair, which is exactly
// MPI's non-overtaking guarantee for a single channel. Abort is the
// cooperative-unwind hook: when a rank dies mid-collective, SimCluster
// aborts every mailbox so peers blocked here wake with kAborted instead of
// hanging forever.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace minsgd::comm {

struct Message {
  int src = -1;
  std::int64_t tag = 0;
  std::vector<float> payload;
};

/// One queued-but-unreceived message, as reported by snapshot(). Payloads
/// are summarized by element count: the diagnostic question is "which
/// (src, tag) is sitting here unmatched", not the data itself.
struct PendingMessage {
  int src = -1;
  std::int64_t tag = 0;
  std::size_t numel = 0;
};

class Mailbox {
 public:
  /// Outcome of a bounded take.
  enum class TakeStatus { kOk, kTimeout, kAborted };

  /// Sentinel for "no deadline".
  static constexpr std::chrono::milliseconds kNoTimeout =
      std::chrono::milliseconds::max();

  void deliver(Message msg) {
    {
      std::lock_guard lk(mu_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Waits until a message from `src` with `tag` is available (earlier
  /// matching messages first), the `timeout` expires, or abort() is called.
  /// On kOk the message is removed into `out`; otherwise `out` is untouched.
  TakeStatus take_for(int src, std::int64_t tag,
                      std::chrono::milliseconds timeout, Message& out) {
    std::unique_lock lk(mu_);
    const bool bounded = timeout != kNoTimeout;
    const auto deadline = bounded
                              ? std::chrono::steady_clock::now() + timeout
                              : std::chrono::steady_clock::time_point::max();
    for (;;) {
      if (auto it = find_match(src, tag); it != queue_.end()) {
        out = std::move(*it);
        queue_.erase(it);
        return TakeStatus::kOk;
      }
      if (aborted_) return TakeStatus::kAborted;
      if (bounded) {
        if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
          if (auto it = find_match(src, tag); it != queue_.end()) {
            out = std::move(*it);
            queue_.erase(it);
            return TakeStatus::kOk;
          }
          return aborted_ ? TakeStatus::kAborted : TakeStatus::kTimeout;
        }
      } else {
        cv_.wait(lk);
      }
    }
  }

  /// Unbounded take; kept for callers that want the pre-timeout contract.
  /// Throws std::runtime_error if the mailbox is aborted while waiting.
  Message take(int src, std::int64_t tag) {
    Message m;
    if (take_for(src, tag, kNoTimeout, m) == TakeStatus::kAborted) {
      throw std::runtime_error("Mailbox::take: aborted");
    }
    return m;
  }

  /// Wakes every waiter with kAborted; subsequent takes fail fast until
  /// clear() resets the mailbox for the next run.
  void abort() {
    {
      std::lock_guard lk(mu_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

  /// Drops all queued messages and clears the abort flag. SimCluster calls
  /// this between runs so stale undelivered messages from an aborted run
  /// cannot poison the next run's tag matching.
  void clear() {
    std::lock_guard lk(mu_);
    queue_.clear();
    aborted_ = false;
  }

  /// Copy of the queue's (src, tag, numel) triples, for timeout diagnosis.
  std::vector<PendingMessage> snapshot() const {
    std::lock_guard lk(mu_);
    std::vector<PendingMessage> out;
    out.reserve(queue_.size());
    for (const auto& m : queue_) {
      out.push_back({m.src, m.tag, m.payload.size()});
    }
    return out;
  }

  bool empty() const {
    std::lock_guard lk(mu_);
    return queue_.empty();
  }

 private:
  std::deque<Message>::iterator find_match(int src, std::int64_t tag) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->src == src && it->tag == tag) return it;
    }
    return queue_.end();
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_ = false;
};

}  // namespace minsgd::comm
