// Mailbox: the per-rank message queue behind the simulated transport.
//
// Messages are float payloads tagged with (source, tag). recv() blocks until
// a matching message arrives; matching is FIFO within a (source, tag) pair,
// which is exactly MPI's non-overtaking guarantee for a single channel.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace minsgd::comm {

struct Message {
  int src = -1;
  std::int64_t tag = 0;
  std::vector<float> payload;
};

class Mailbox {
 public:
  void deliver(Message msg) {
    {
      std::lock_guard lk(mu_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Blocks until a message from `src` with `tag` is available, removes and
  /// returns it. Earlier matching messages are returned first.
  Message take(int src, std::int64_t tag) {
    std::unique_lock lk(mu_);
    for (;;) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          Message m = std::move(*it);
          queue_.erase(it);
          return m;
        }
      }
      cv_.wait(lk);
    }
  }

  bool empty() const {
    std::lock_guard lk(mu_);
    return queue_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace minsgd::comm
