// 1-bit SGD gradient compression with error feedback (Seide et al. 2014).
//
// The paper cites 1-bit SGD as the bandwidth-side alternative to its own
// latency-side answer (fewer, larger batches). Each gradient coordinate is
// quantized to one bit (its sign), with two per-tensor scales (the mean of
// the positive and negative coordinates), and the quantization error is
// carried into the next iteration's gradient — the error-feedback trick
// that keeps training convergent despite 32x compression.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace minsgd::comm {

/// Stateful compressor: owns the error-feedback residual for one worker.
class OneBitCompressor {
 public:
  explicit OneBitCompressor(std::size_t dim);

  std::size_t dim() const { return residual_.size(); }

  /// Floats needed to carry a compressed gradient of `numel` coordinates:
  /// two scales plus one bit per coordinate packed 32-per-float.
  static std::size_t payload_floats(std::size_t numel);

  /// Quantizes `grad + residual` to the sign representation, updates the
  /// residual to the quantization error, and returns the packed payload.
  std::vector<float> compress(std::span<const float> grad);

  /// Expands a payload back to dense floats (adds into `out`).
  static void decompress_add(std::span<const float> payload,
                             std::span<float> out);

  /// Direct read of the residual (for tests).
  std::span<const float> residual() const { return residual_; }

 private:
  std::vector<float> residual_;
};

}  // namespace minsgd::comm
