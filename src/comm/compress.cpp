#include "comm/compress.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace minsgd::comm {

OneBitCompressor::OneBitCompressor(std::size_t dim) : residual_(dim, 0.0f) {
  if (dim == 0) throw std::invalid_argument("OneBitCompressor: dim == 0");
}

std::size_t OneBitCompressor::payload_floats(std::size_t numel) {
  return 2 + (numel + 31) / 32;
}

std::vector<float> OneBitCompressor::compress(std::span<const float> grad) {
  if (grad.size() != residual_.size()) {
    throw std::invalid_argument("OneBitCompressor: gradient size mismatch");
  }
  const std::size_t n = grad.size();
  // Error-feedback input: v = grad + residual.
  // Two-level quantizer: positive coordinates -> +pos_scale, the rest ->
  // -neg_scale, with scales chosen as the conditional means (the MSE-optimal
  // reconstruction for a fixed sign partition).
  double pos_sum = 0.0, neg_sum = 0.0;
  std::size_t pos_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(grad[i]) + residual_[i];
    if (v > 0) {
      pos_sum += v;
      ++pos_count;
    } else {
      neg_sum += v;
    }
  }
  const std::size_t neg_count = n - pos_count;
  const float pos_scale =
      pos_count ? static_cast<float>(pos_sum / pos_count) : 0.0f;
  const float neg_scale =
      neg_count ? static_cast<float>(-neg_sum / neg_count) : 0.0f;

  std::vector<float> payload(payload_floats(n), 0.0f);
  payload[0] = pos_scale;
  payload[1] = neg_scale;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(grad[i]) + residual_[i];
    const bool positive = v > 0;
    if (positive) {
      const std::size_t word = i / 32, bit = i % 32;
      auto bits = std::bit_cast<std::uint32_t>(payload[2 + word]);
      bits |= (1u << bit);
      payload[2 + word] = std::bit_cast<float>(bits);
    }
    const float reconstructed = positive ? pos_scale : -neg_scale;
    residual_[i] = static_cast<float>(v - reconstructed);
  }
  return payload;
}

void OneBitCompressor::decompress_add(std::span<const float> payload,
                                      std::span<float> out) {
  const std::size_t n = out.size();
  if (payload.size() != payload_floats(n)) {
    throw std::invalid_argument("OneBitCompressor: payload size mismatch");
  }
  const float pos_scale = payload[0];
  const float neg_scale = payload[1];
  for (std::size_t i = 0; i < n; ++i) {
    const auto bits = std::bit_cast<std::uint32_t>(payload[2 + i / 32]);
    out[i] += (bits >> (i % 32)) & 1u ? pos_scale : -neg_scale;
  }
}

}  // namespace minsgd::comm
