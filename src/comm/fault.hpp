// Fault model: deterministic fault injection for the simulated cluster.
//
// The paper's runs are bulk-synchronous across up to 2048 nodes, where a
// single dropped message, straggler, or dead rank stalls every iteration.
// This header supplies (a) the error taxonomy surviving ranks observe —
// RankFailure, CommTimeout, ClusterAborted, all rooted at FaultError so
// recovery code can catch the family — and (b) a seedable FaultInjector
// hooked into Communicator::send that can drop, delay, duplicate, or
// bit-corrupt messages and crash a chosen rank at a chosen send count.
// Injection is deterministic per source rank (each rank draws from its own
// stream, and a rank's sends are ordered), so failure scenarios replay
// exactly regardless of thread interleaving.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/mailbox.hpp"
#include "tensor/rng.hpp"

namespace minsgd::comm {

/// Root of the fault taxonomy: everything a rank can observe when the
/// cluster misbehaves. Recovery drivers catch this (and only this) —
/// logic errors like bad arguments must not be retried.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

/// A rank died (injected crash or modeled node failure).
class RankFailure final : public FaultError {
 public:
  RankFailure(int rank, const std::string& what)
      : FaultError(what), rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// A recv deadline expired. Carries (rank, peer, tag) and a snapshot of the
/// waiting rank's queue so a mismatched-tag deadlock is diagnosable from the
/// error alone.
class CommTimeout final : public FaultError {
 public:
  CommTimeout(int rank, int peer, std::int64_t tag,
              std::chrono::milliseconds deadline,
              std::vector<PendingMessage> pending);
  /// Same fields, caller-supplied message (used when aggregating rank
  /// errors without losing the timeout's structured data).
  CommTimeout(int rank, int peer, std::int64_t tag,
              std::vector<PendingMessage> pending, const std::string& what);
  int rank() const { return rank_; }
  int peer() const { return peer_; }
  std::int64_t tag() const { return tag_; }
  const std::vector<PendingMessage>& pending() const { return pending_; }

 private:
  int rank_, peer_;
  std::int64_t tag_;
  std::vector<PendingMessage> pending_;
};

/// Cooperative unwind: another rank failed and the cluster told everyone
/// blocked in transport or barrier to abandon the run.
class ClusterAborted final : public FaultError {
 public:
  explicit ClusterAborted(const std::string& what) : FaultError(what) {}
};

/// What the injector decides about one send.
enum class SendAction {
  kDeliver,       // pass through (possibly delayed / corrupted)
  kDrop,          // message lost on the wire
  kDeliverTwice,  // duplicated by the network
};

/// Declarative fault scenario. Probabilities are per message; the crash is a
/// one-shot event keyed to a source rank's cumulative send count.
struct FaultPlan {
  std::uint64_t seed = 0x5eedf417ull;
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  double duplicate_prob = 0.0;
  double corrupt_prob = 0.0;
  /// Straggler stall applied to a delayed message (sender-side, modeling a
  /// slow NIC/node; the sender blocks, so the stall propagates like a real
  /// straggler in a bulk-synchronous step).
  std::chrono::milliseconds delay{10};
  /// Rank to crash (-1 = never) once its send count reaches crash_at_send.
  int crash_rank = -1;
  std::int64_t crash_at_send = 0;
  /// Compute-side straggler: this rank (-1 = none) sleeps straggler_stall at
  /// every outermost collective entry, so it *arrives* late — the signature
  /// a slow node leaves in cross-rank flight-recorder analysis, as opposed
  /// to the per-message delay above, whose wait time smears across every
  /// peer blocked mid-collective.
  int straggler_rank = -1;
  std::chrono::milliseconds straggler_stall{0};
};

/// Per-rank fault bookkeeping, the failure-side sibling of TrafficStats.
struct FaultStats {
  std::int64_t sends_seen = 0;
  std::int64_t dropped = 0;
  std::int64_t delayed = 0;
  std::int64_t duplicated = 0;
  std::int64_t corrupted = 0;
  std::int64_t crashes = 0;
  std::int64_t stalls = 0;  // straggler stalls at collective entry

  FaultStats& operator+=(const FaultStats& o) {
    sends_seen += o.sends_seen;
    dropped += o.dropped;
    delayed += o.delayed;
    duplicated += o.duplicated;
    corrupted += o.corrupted;
    crashes += o.crashes;
    stalls += o.stalls;
    return *this;
  }
};

/// Applies a FaultPlan to the send path. Thread-safe; deliberately shared
/// across SimCluster lifetimes (via shared_ptr) so a checkpoint-restarted
/// run sees the crash already consumed — the failed node was "replaced".
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int world);

  /// Consulted by Communicator::send. May throw RankFailure (the injected
  /// crash), sleep (straggler delay), or mutate `payload` (bit corruption).
  SendAction on_send(int src, int dst, std::int64_t tag,
                     std::vector<float>& payload);

  /// Consulted by Communicator at every *outermost* collective entry:
  /// sleeps the plan's straggler_stall when `phys` is the straggler rank,
  /// so its arrival (kCollBegin flight event) lands late.
  void on_collective_enter(int phys);

  FaultStats rank_stats(int rank) const;
  FaultStats total() const;
  const FaultPlan& plan() const { return plan_; }
  /// True until the scheduled crash has fired (or if none is scheduled,
  /// always false).
  bool crash_pending() const;

 private:
  FaultPlan plan_;
  mutable std::mutex mu_;
  std::vector<Rng> streams_;       // one stream per source rank
  std::vector<FaultStats> stats_;  // one record per source rank
  bool crash_fired_ = false;
};

}  // namespace minsgd::comm
