// Communicator: the rank-facing message-passing API (an MPI subset).
//
// Point-to-point send/recv over mailboxes, plus the collectives synchronous
// SGD needs: barrier, binomial-tree broadcast/reduce, allgather, and an
// allreduce with selectable algorithm (star, ring, binomial tree,
// recursive halving-doubling). All collectives are implemented *on top of*
// send/recv so the traffic meter sees every message — the message/byte
// counts of Figures 8-10 are measured, not assumed.
//
// Usage contract (as in MPI): every rank of the cluster must call the same
// sequence of collective operations.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/traffic.hpp"

namespace minsgd {
class ComputeContext;
}

namespace minsgd::comm {

class SimCluster;
struct MembershipView;

enum class AllreduceAlgo {
  kStar,              // everyone -> root, root sums, root -> everyone
  kRing,              // reduce-scatter + allgather ring (bandwidth-optimal)
  kTree,              // binomial reduce to 0 + binomial broadcast
  kRecursiveHalving,  // recursive halving-doubling (latency-optimal-ish)
};

const char* to_string(AllreduceAlgo algo);

class Communicator {
 public:
  /// Reserved channels. Channel 0 is the default rank-facing channel; the
  /// async collective engine's worker thread uses channel 1 so its
  /// collectives can run concurrently with the main channel's without tag
  /// collisions; the elastic membership wire round uses channel 2 so a
  /// proposed view can be proven live without touching training channels.
  static constexpr int kMembershipChannel = 2;

  /// Full-world communicator over the cluster (generation 0, virtual rank
  /// == physical rank). `channel` selects a disjoint collective-tag space;
  /// all ranks of a collective must use the same channel.
  Communicator(SimCluster& cluster, int rank, int channel = 0);

  /// Group communicator over the members of `view`. This rank's virtual
  /// rank is its dense index in the view; collective tags carry the view's
  /// generation as a prefix, so in-flight traffic from an older generation
  /// can never match (see membership.hpp). `physical_rank` must be a
  /// member of the view.
  Communicator(SimCluster& cluster, int physical_rank,
               const MembershipView& view, int channel = 0);

  /// Same membership and generation as `base`, different channel.
  Communicator(const Communicator& base, int channel);

  /// Virtual rank: this rank's dense index among the group members (equal
  /// to the physical rank for a full-world communicator).
  int rank() const { return rank_; }
  /// Members of this communicator's group (the cluster world when full).
  int world() const;
  /// The underlying cluster thread identity, regardless of group.
  int physical_rank() const { return phys_; }
  /// Membership generation whose tag space this communicator speaks.
  std::int64_t generation() const { return generation_; }
  SimCluster& cluster() const { return cluster_; }

  /// This rank's compute context (its slice of the cluster's global intra-op
  /// thread budget). Rank code must use this — never the process default —
  /// so total worker threads stay bounded.
  const ComputeContext& ctx() const;

  // -- point to point ----------------------------------------------------
  /// Buffered, non-blocking send (never deadlocks on unmatched recv order).
  /// Subject to the cluster's fault injector, if any: the message may be
  /// dropped, delayed, duplicated, or corrupted, and an injected crash
  /// surfaces here as RankFailure. Throws ClusterAborted once the cluster
  /// has aborted.
  void send(int dst, std::int64_t tag, std::span<const float> data);

  /// Blocks until the matching message arrives, the cluster's recv deadline
  /// expires (throws CommTimeout with a queue snapshot), or the cluster
  /// aborts (throws ClusterAborted).
  std::vector<float> recv(int src, std::int64_t tag);

  /// recv with an explicit deadline overriding the cluster default.
  std::vector<float> recv_for(int src, std::int64_t tag,
                              std::chrono::milliseconds timeout);

  // -- collectives ---------------------------------------------------------
  /// Synchronizes all ranks.
  void barrier();

  /// Binomial-tree broadcast of `data` from `root` (in place on non-roots).
  void broadcast(std::span<float> data, int root = 0);

  /// Binomial-tree sum-reduction into `root`'s buffer; other ranks' buffers
  /// are left unspecified.
  void reduce_sum(std::span<float> data, int root = 0);

  /// In-place allreduce (sum) with the chosen algorithm.
  void allreduce_sum(std::span<float> data,
                     AllreduceAlgo algo = AllreduceAlgo::kRing);

  /// Gathers equal-size `local` contributions from every rank into `out`
  /// (out.size() == world * local.size()), rank-major order.
  void allgather(std::span<const float> local, std::span<float> out);

 private:
  void allreduce_star(std::span<float> data);
  void allreduce_ring(std::span<float> data);
  void allreduce_tree(std::span<float> data);
  void allreduce_rhd(std::span<float> data);

  /// Attributes sends inside a collective to that collective for the
  /// traffic meter. Only the *outermost* collective claims the traffic
  /// (allreduce-tree's internal reduce/broadcast stay "allreduce-tree");
  /// a Communicator is used by exactly one rank thread, so a plain member
  /// suffices.
  class OpScope {
   public:
    OpScope(Communicator& comm, WireOp op) : comm_(comm), prev_(comm.op_) {
      if (prev_ == WireOp::kP2P) comm_.op_ = op;
    }
    ~OpScope() { comm_.op_ = prev_; }
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    Communicator& comm_;
    WireOp prev_;
  };

  /// Next tag for a collective op. All ranks run the same collective
  /// sequence per channel, so matching counters yield matching tags.
  std::int64_t next_collective_tag() { return tag_base_ + seq_++; }

  /// Outermost-collective entry hook for the fault injector's straggler
  /// stall (a slow node arriving late, distinct from per-message delay).
  /// No-op inside nested collectives or without an injector.
  void maybe_stall();

  /// Physical rank behind group-virtual rank `v`.
  int to_phys(int v) const {
    return members_.empty() ? v : members_[static_cast<std::size_t>(v)];
  }

  static constexpr std::int64_t kCollectiveBase = std::int64_t{1} << 40;
  /// Tag distance between channels; collective sequence numbers never get
  /// anywhere near this.
  static constexpr std::int64_t kChannelStride = std::int64_t{1} << 36;
  static constexpr int kMaxChannels = 8;
  /// Tag distance between membership generations, above the channel space,
  /// so {generation, channel, seq} tags are all mutually disjoint.
  static constexpr std::int64_t kGenerationStride = std::int64_t{1} << 43;
  static constexpr std::int64_t kMaxGenerations = std::int64_t{1} << 19;

  SimCluster& cluster_;
  int rank_;  // virtual rank within members_ (== phys_ when full-world)
  std::vector<int> members_;  // ascending physical ranks; empty = full world
  int phys_;
  int channel_ = 0;
  std::int64_t generation_ = 0;
  std::int64_t tag_base_ = kCollectiveBase;
  std::int64_t seq_ = 0;
  /// Rendezvous counter for the message-free full-world barrier; stands in
  /// for a wire tag in its flight events (all ranks run the same barrier
  /// sequence, so counters align like collective tags do).
  std::int64_t barrier_seq_ = 0;
  WireOp op_ = WireOp::kP2P;
};

}  // namespace minsgd::comm
