#include "comm/model_parallel.hpp"

#include <stdexcept>
#include <vector>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace minsgd::comm {

ShardedLinear::ShardedLinear(Communicator& comm, std::int64_t in_features,
                             std::int64_t out_features)
    : comm_(comm), in_(in_features), out_(out_features) {
  if (in_ <= 0 || out_ <= 0) {
    throw std::invalid_argument("ShardedLinear: bad dimensions");
  }
  const std::int64_t world = comm.world();
  if (out_ < world) {
    throw std::invalid_argument(
        "ShardedLinear: fewer output rows than ranks");
  }
  const std::int64_t base = out_ / world;
  const std::int64_t extra = out_ % world;
  rows_ = base + (comm.rank() < extra ? 1 : 0);
  first_ = comm.rank() * base + std::min<std::int64_t>(comm.rank(), extra);
  w_.resize({rows_, in_});
  b_.resize({rows_});
  dw_.resize({rows_, in_});
  db_.resize({rows_});
}

void ShardedLinear::init(std::uint64_t seed) {
  // Draw the full (out x in) matrix from the shared stream and keep only
  // this rank's rows, so the assembled matrix is seed-determined and
  // identical to the single-machine layer's.
  Rng rng(seed);
  Tensor full({out_, in_});
  nn::he_normal(full, in_, rng);
  copy(std::span<const float>(full.data() + first_ * in_,
                              static_cast<std::size_t>(rows_ * in_)),
       w_.span());
  b_.zero();
  dw_.zero();
  db_.zero();
}

void ShardedLinear::forward(const Tensor& x, Tensor& y) {
  if (x.shape().rank() != 2 || x.shape()[1] != in_) {
    throw std::invalid_argument("ShardedLinear::forward: bad input " +
                                x.shape().str());
  }
  const std::int64_t batch = x.shape()[0];
  // Local block: (batch x rows_) = x (batch x in) * W_local^T.
  Tensor local({batch, rows_});
  sgemm(Trans::kNo, Trans::kYes, batch, rows_, in_, 1.0f, x.data(), in_,
        w_.data(), in_, 0.0f, local.data(), rows_);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t r = 0; r < rows_; ++r) local.at(n, r) += b_[r];
  }

  // Assemble the full activation. Shards can be unequal, so exchange
  // row-counts-tagged blocks via the generic allgather on a padded layout:
  // simplest correct approach is per-rank broadcast of its block size and
  // content using the collective tag machinery via allgather over a padded
  // max-size buffer.
  const std::int64_t world = comm_.world();
  const std::int64_t max_rows = (out_ + world - 1) / world;
  std::vector<float> padded(static_cast<std::size_t>(batch * max_rows), 0.0f);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t r = 0; r < rows_; ++r) {
      padded[static_cast<std::size_t>(n * max_rows + r)] = local.at(n, r);
    }
  }
  std::vector<float> gathered(padded.size() *
                              static_cast<std::size_t>(world));
  comm_.allgather(padded, gathered);

  y.resize({batch, out_});
  const std::int64_t base = out_ / world;
  const std::int64_t extra = out_ % world;
  for (std::int64_t rank = 0; rank < world; ++rank) {
    const std::int64_t rrows = base + (rank < extra ? 1 : 0);
    const std::int64_t rfirst = rank * base + std::min(rank, extra);
    const float* src =
        gathered.data() + static_cast<std::size_t>(rank) * padded.size();
    for (std::int64_t n = 0; n < batch; ++n) {
      for (std::int64_t r = 0; r < rrows; ++r) {
        y.at(n, rfirst + r) = src[n * max_rows + r];
      }
    }
  }
}

void ShardedLinear::backward(const Tensor& x, const Tensor& dy, Tensor& dx) {
  const std::int64_t batch = x.shape()[0];
  if (dy.shape() != Shape({batch, out_})) {
    throw std::invalid_argument("ShardedLinear::backward: bad dy shape");
  }
  // Slice this rank's columns of dy.
  Tensor dy_local({batch, rows_});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t r = 0; r < rows_; ++r) {
      dy_local.at(n, r) = dy.at(n, first_ + r);
    }
  }
  // dW_local += dy_local^T * x ;  db_local += column sums.
  sgemm(Trans::kYes, Trans::kNo, rows_, in_, batch, 1.0f, dy_local.data(),
        rows_, x.data(), in_, 1.0f, dw_.data(), in_);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t r = 0; r < rows_; ++r) db_[r] += dy_local.at(n, r);
  }
  // dx = sum over ranks of dy_local * W_local (each rank contributes the
  // part of the chain rule flowing through its rows).
  dx.resize({batch, in_});
  sgemm(Trans::kNo, Trans::kNo, batch, in_, rows_, 1.0f, dy_local.data(),
        rows_, w_.data(), in_, 0.0f, dx.data(), in_);
  comm_.allreduce_sum(dx.span(), AllreduceAlgo::kRing);
}

}  // namespace minsgd::comm
