// TrafficMeter: counts the messages and bytes each rank puts on the wire.
//
// Figures 8-10 of the paper argue about latency overhead (message count)
// and bandwidth overhead (bytes moved) as functions of batch size; the
// meter makes those measurable quantities of our collectives rather than
// formulas taken on faith.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace minsgd::comm {

struct TrafficStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;

  TrafficStats& operator+=(const TrafficStats& o) {
    messages += o.messages;
    bytes += o.bytes;
    return *this;
  }
};

/// Per-rank atomic counters; aggregate with total().
class TrafficMeter {
 public:
  explicit TrafficMeter(std::size_t world) : per_rank_(world) {}

  void record_send(std::size_t rank, std::int64_t bytes) {
    per_rank_[rank].messages.fetch_add(1, std::memory_order_relaxed);
    per_rank_[rank].bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  TrafficStats rank_stats(std::size_t rank) const {
    return {per_rank_[rank].messages.load(std::memory_order_relaxed),
            per_rank_[rank].bytes.load(std::memory_order_relaxed)};
  }

  TrafficStats total() const {
    TrafficStats t;
    for (std::size_t r = 0; r < per_rank_.size(); ++r) t += rank_stats(r);
    return t;
  }

  void reset() {
    for (auto& c : per_rank_) {
      c.messages.store(0, std::memory_order_relaxed);
      c.bytes.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Counters {
    std::atomic<std::int64_t> messages{0};
    std::atomic<std::int64_t> bytes{0};
  };
  std::vector<Counters> per_rank_;
};

}  // namespace minsgd::comm
