// TrafficMeter: counts the messages and bytes each rank puts on the wire.
//
// Figures 8-10 of the paper argue about latency overhead (message count)
// and bandwidth overhead (bytes moved) as functions of batch size; the
// meter makes those measurable quantities of our collectives rather than
// formulas taken on faith. Traffic is attributed both per rank and per
// *collective* (which allreduce algorithm, broadcast, allgather, raw
// point-to-point), so a bench can say "the ring moved X bytes in M
// messages" instead of lumping everything together. Per-op counters are a
// fixed array of atomics — the collective vocabulary is closed — so the
// send path takes no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace minsgd::comm {

struct TrafficStats {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;

  TrafficStats& operator+=(const TrafficStats& o) {
    messages += o.messages;
    bytes += o.bytes;
    return *this;
  }
};

/// The closed set of operations traffic can be attributed to. kP2P is the
/// default for sends outside any collective.
enum class WireOp : std::uint8_t {
  kP2P = 0,
  kBroadcast,
  kReduce,
  kAllgather,
  kAllreduceStar,
  kAllreduceRing,
  kAllreduceTree,
  kAllreduceRhd,
  kCount,
};

const char* to_string(WireOp op);

/// Per-rank and per-collective atomic counters; aggregate with total().
class TrafficMeter {
 public:
  explicit TrafficMeter(std::size_t world) : per_rank_(world) {}

  void record_send(std::size_t rank, std::int64_t bytes,
                   WireOp op = WireOp::kP2P) {
    per_rank_[rank].messages.fetch_add(1, std::memory_order_relaxed);
    per_rank_[rank].bytes.fetch_add(bytes, std::memory_order_relaxed);
    auto& oc = per_op_[static_cast<std::size_t>(op)];
    oc.messages.fetch_add(1, std::memory_order_relaxed);
    oc.bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  TrafficStats rank_stats(std::size_t rank) const {
    return load(per_rank_[rank]);
  }

  TrafficStats op_stats(WireOp op) const {
    return load(per_op_[static_cast<std::size_t>(op)]);
  }

  /// Every op with non-zero traffic, as (name, stats) rows.
  std::vector<std::pair<std::string, TrafficStats>> by_op() const {
    std::vector<std::pair<std::string, TrafficStats>> rows;
    for (std::size_t i = 0; i < static_cast<std::size_t>(WireOp::kCount);
         ++i) {
      const auto s = load(per_op_[i]);
      if (s.messages == 0) continue;
      rows.emplace_back(to_string(static_cast<WireOp>(i)), s);
    }
    return rows;
  }

  TrafficStats total() const {
    TrafficStats t;
    for (std::size_t r = 0; r < per_rank_.size(); ++r) t += rank_stats(r);
    return t;
  }

  void reset() {
    for (auto& c : per_rank_) {
      c.messages.store(0, std::memory_order_relaxed);
      c.bytes.store(0, std::memory_order_relaxed);
    }
    for (auto& c : per_op_) {
      c.messages.store(0, std::memory_order_relaxed);
      c.bytes.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Counters {
    std::atomic<std::int64_t> messages{0};
    std::atomic<std::int64_t> bytes{0};
  };

  static TrafficStats load(const Counters& c) {
    return {c.messages.load(std::memory_order_relaxed),
            c.bytes.load(std::memory_order_relaxed)};
  }

  std::vector<Counters> per_rank_;
  Counters per_op_[static_cast<std::size_t>(WireOp::kCount)];
};

}  // namespace minsgd::comm
