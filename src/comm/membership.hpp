// Dynamic world membership: ranks join and leave a live run without restart.
//
// The checkpoint/restart driver (train/fault_tolerant.hpp) recovers from a
// fault by tearing down the whole cluster; production elastic systems
// (TorchElastic, Horovod Elastic) instead *resize*: survivors agree on a new
// member set, re-form the communicator, and keep going. This header supplies
// that machinery for the SimCluster:
//
//   * MembershipView — a generation-numbered snapshot of the live physical
//     ranks. Collectives address members by their dense index in the view
//     (their *virtual* rank), so the existing allreduce algorithms work
//     unchanged over any survivor subset.
//   * ElasticCoordinator — the control plane of a reconfiguration. It models
//     the out-of-band rendezvous service real elastic stacks lean on (etcd,
//     c10d TCPStore) with in-process shared state, and drives an in-band
//     propose/ack/commit round over the *new* generation's tag space before
//     a view is committed, so the transport of the next generation is proven
//     live end-to-end first.
//
// Why generations make stale traffic harmless: a group Communicator prefixes
// its collective tags with the view's generation (see communicator.hpp), so
// an in-flight message from generation g can never match a tag minted in
// generation g+1 — even messages duplicated by the fault injector die in the
// mailbox until the next transport reset.
//
// Epoch lifecycle (one reconfiguration):
//   1. open    — the first rank to observe a due ElasticEvent or a fault
//                opens an epoch; due joiners parked in await_admission are
//                pulled in as participants.
//   2. arrive  — every live participant parks in reconfigure(); crashed
//                ranks self-report via report_death and drop out.
//   3. propose — the lowest-numbered surviving member resets the transport
//                (mailboxes drained, barrier re-armed, abort cleared — safe
//                because every live rank is parked here), re-splits the
//                compute budget over the proposed members, and publishes
//                {generation+1, survivors ∪ joiners}.
//   4. wire    — proposed members run propose/ack/commit collectives over a
//                fresh generation-tagged Communicator with a bounded recv
//                deadline; any fault fails the attempt.
//   5. close   — all live proposed members report the wire result; the first
//                thread past the barrier commits the view (metrics, records)
//                or bumps the attempt counter and retries from 3. The close
//                barrier is what makes commit atomic: a member that lost the
//                wire round's commit message still retries with everyone
//                else instead of diverging (the classic 2PC window).
//
// Failure detector: only self-reported crashes (report_death) and scheduled
// leaves shrink the view. A survivor's CommTimeout triggers an epoch but
// accuses nobody — if every rank shows up at the rendezvous, the same
// membership is re-formed under a fresh generation, which is exactly "retry
// the iteration" recovery from message loss.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace minsgd::comm {

class SimCluster;

/// A generation-numbered snapshot of the live physical ranks.
struct MembershipView {
  std::int64_t generation = 0;
  std::vector<int> ranks;  // physical ranks, strictly ascending

  int world() const { return static_cast<int>(ranks.size()); }
  bool contains(int phys) const { return index_of(phys) >= 0; }
  /// Dense index of `phys` within the view — the member's *virtual* rank —
  /// or -1 when absent.
  int index_of(int phys) const {
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] == phys) return static_cast<int>(i);
    }
    return -1;
  }
  /// Generation 0 over physical ranks [0, world).
  static MembershipView initial(int world);
};

enum class ElasticEventKind { kJoin, kLeave };

/// A scheduled membership change, consumed at the first reconfiguration
/// whose trigger iteration satisfies `at_iter <= iter`. Joins target a
/// standby physical rank, leaves an active one; stale events (join of an
/// already-active rank, leave of a standby) are consumed and ignored.
struct ElasticEvent {
  std::int64_t at_iter = 0;
  ElasticEventKind kind = ElasticEventKind::kLeave;
  int rank = 0;
};

/// One committed reconfiguration, as observed by the coordinator.
struct ReconfigRecord {
  std::int64_t generation = 0;   // generation of the committed view
  std::int64_t at_iter = 0;      // optimizer steps completed at resume
  int world = 0;                 // members of the committed view
  std::int64_t pause_ns = 0;     // epoch open -> commit wall clock
  int attempts = 1;              // wire rounds needed (1 = clean commit)
  bool fault_triggered = false;  // a fault report fed this epoch
};

enum class MemberRole {
  kMember,   // in the committed view: adopt it and continue training
  kStandby,  // not in the view (leaver / run over): park in await_admission
};

/// What reconfigure() hands back once a view committed (or the run failed).
struct ReconfigOutcome {
  MemberRole role = MemberRole::kStandby;
  MembershipView view;           // committed view (meaningful for kMember)
  std::int64_t resume_iter = 0;  // optimizer steps completed at resume
  int state_root = 0;            // virtual rank holding authoritative state
  bool is_root = false;          // this rank is state_root
};

/// Control plane of elastic membership. One instance is shared by every
/// rank thread of a run (it outlives individual generations); all public
/// methods are thread-safe.
class ElasticCoordinator {
 public:
  struct Options {
    /// Recv deadline for the in-band wire round. A lost protocol message
    /// costs one attempt, not a hang.
    std::chrono::milliseconds round_timeout{2000};
    /// Watchdog threshold: an epoch open longer than this gets the cluster
    /// aborted so ranks stuck in old-generation transport can unwind and
    /// reach the rendezvous. Rendezvous waits give up (and fail the run) at
    /// twice this value.
    std::chrono::milliseconds rendezvous_timeout{30000};
    /// Wire-round attempts per epoch before the run is declared failed.
    int max_rounds = 8;
  };

  /// Re-splits the cluster's compute budget over `initial.ranks` (standby
  /// ranks idle at 1 thread) and publishes the initial membership metrics.
  ElasticCoordinator(SimCluster& cluster, MembershipView initial,
                     std::vector<ElasticEvent> events, Options options);
  ElasticCoordinator(SimCluster& cluster, MembershipView initial,
                     std::vector<ElasticEvent> events);
  ~ElasticCoordinator();

  ElasticCoordinator(const ElasticCoordinator&) = delete;
  ElasticCoordinator& operator=(const ElasticCoordinator&) = delete;

  /// The committed view.
  MembershipView view() const;

  /// True when an active rank about to run global iteration `next_iter`
  /// should enter reconfigure() instead: a scheduled event is due or a
  /// fault report is pending. Cheap; polled at every iteration top.
  bool reconfig_due(std::int64_t next_iter) const;

  /// A survivor observed a fault (CommTimeout) it could not attribute to
  /// itself. Aborts the cluster so peers blocked in transport unwind, and
  /// marks a reconfiguration pending. The caller must then call
  /// reconfigure().
  void report_failure(int phys);

  /// This rank crashed (its own send threw RankFailure). Removes it from
  /// the live set; the caller must then park in await_admission — the slot
  /// models a replaced node and can be re-admitted by a later join event.
  void report_death(int phys);

  /// Parks a standby rank until it is pulled into a reconfiguration as a
  /// joiner (returns true; the caller must then call reconfigure with
  /// completed = -1) or the run ends (returns false).
  bool await_admission(int phys);

  /// Runs the reconfiguration protocol. `completed` is the number of
  /// optimizer steps this rank has applied (-1 for joiners, who have no
  /// state). Blocks until a view commits; returns this rank's role in it.
  /// Throws std::runtime_error if the rendezvous exceeds its hard deadline
  /// or the attempt budget (after marking the run failed so peers unwind),
  /// and RankFailure if this rank crashes inside the wire round (the
  /// caller must then report_death and park).
  ReconfigOutcome reconfigure(int phys, std::int64_t completed);

  /// An active rank calls this once training is complete, just before its
  /// thread exits: withdraws the rank from membership (so stragglers never
  /// rendezvous with a departed thread) and wakes every parked standby so
  /// it can exit too. Idempotent per rank.
  void finish(int phys);

  /// True when the run can no longer make progress (no survivors, attempt
  /// budget exhausted, or rendezvous deadline blown).
  bool run_failed() const;
  std::string fail_reason() const;

  /// Committed reconfigurations so far (copy; stable only after the run).
  std::vector<ReconfigRecord> records() const;
  int reconfigurations() const;

 private:
  enum class Status { kActive, kStandby, kDead };

  void open_epoch_locked(std::int64_t trigger_iter);
  void resolve_attempt_locked();
  void fail_run_locked(const std::string& reason);
  bool rendezvous_complete_locked() const;
  bool close_complete_locked() const;
  int leader_phys_locked() const;
  MembershipView make_proposal_locked() const;
  void compute_resume_locked();
  void publish_metrics_locked() const;
  ReconfigOutcome standby_outcome() const { return ReconfigOutcome{}; }
  /// In-band propose/ack/commit over the proposed generation's tag space.
  /// Returns false on any fault or payload mismatch (costs one attempt).
  bool wire_round(int phys, const MembershipView& proposal,
                  std::int64_t round_id);
  void watchdog_loop();

  template <typename Pred>
  void wait_or_throw(std::unique_lock<std::mutex>& lk,
                     std::chrono::steady_clock::time_point deadline,
                     const char* what, Pred pred);

  SimCluster& cluster_;
  Options opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;

  MembershipView view_;
  std::vector<Status> status_;  // by physical rank
  struct PendingEvent {
    ElasticEvent ev;
    bool consumed = false;
  };
  std::vector<PendingEvent> events_;
  bool failure_pending_ = false;
  bool run_done_ = false;
  bool run_failed_ = false;
  std::string fail_reason_;

  // One epoch = one reconfiguration (possibly several wire-round attempts).
  bool epoch_open_ = false;
  std::int64_t epoch_seq_ = 0;  // epochs opened, ever
  int attempt_ = 0;             // attempts within the open epoch
  std::chrono::steady_clock::time_point epoch_t0_;
  std::set<int> participants_;           // phys expected at the rendezvous
  std::map<int, std::int64_t> arrived_;  // phys -> completed steps
  std::set<int> epoch_leavers_;
  bool epoch_fault_ = false;

  // Per-attempt proposal state (valid while decision_seq_ is unchanged).
  int proposed_attempt_ = -1;
  MembershipView proposal_;
  std::int64_t resume_iter_ = 0;
  int state_root_phys_ = 0;
  std::int64_t round_id_ = 0;

  // Close barrier + decision log. decision_seq_ is monotone so a thread
  // that slept through a decision still classifies it correctly.
  std::set<int> close_reported_;
  bool wire_ok_ = true;
  std::int64_t decision_seq_ = 0;
  std::int64_t commit_seq_ = 0;  // decision_seq_ value of the last commit
  MembershipView committed_view_;
  std::int64_t committed_resume_ = 0;
  int committed_root_phys_ = 0;

  std::vector<ReconfigRecord> records_;

  // Liveness watchdog (the membership comm worker): aborts the cluster when
  // an epoch stalls so ranks stuck in old-generation transport unwind.
  bool shutdown_ = false;
  std::thread watchdog_;
};

}  // namespace minsgd::comm
