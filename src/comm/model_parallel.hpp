// Model parallelism (paper Figure 2(b)): one layer's weights partitioned
// across machines, activations exchanged at the partition boundary.
//
// The paper contrasts this with data parallelism and explains why data
// parallelism won for ImageNet-scale models (the matrices are too small to
// justify splitting). This module implements the canonical example — a
// fully connected layer with its output dimension row-partitioned over the
// ranks — so the trade-off is executable: the math is identical to the
// single-machine layer (tested), but every forward needs an allgather of
// activations and every backward an allreduce of input gradients.
#pragma once

#include <cstdint>
#include <span>

#include "comm/communicator.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::comm {

/// A Linear layer shard: this rank owns rows [first_row, first_row + rows)
/// of the (out x in) weight matrix and the matching bias slice.
class ShardedLinear {
 public:
  /// Splits `out_features` as evenly as possible over `comm.world()`;
  /// earlier ranks get the remainder rows.
  ShardedLinear(Communicator& comm, std::int64_t in_features,
                std::int64_t out_features);

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  std::int64_t local_rows() const { return rows_; }
  std::int64_t first_row() const { return first_; }

  Tensor& local_weight() { return w_; }
  Tensor& local_bias() { return b_; }

  /// Initializes the local shard so the *assembled* matrix equals what a
  /// single-machine Linear initialized from `seed` would hold (every rank
  /// draws the full matrix stream and keeps its rows — cheap at these
  /// sizes, and it makes the equivalence exact).
  void init(std::uint64_t seed);

  /// y = x W^T + b for the full layer: each rank computes its row block,
  /// then all ranks allgather so everyone holds the complete (batch x out)
  /// activation (the boundary-crossing edges of Figure 2(b)).
  void forward(const Tensor& x, Tensor& y);

  /// Given dL/dy for the full output, accumulates local dW/db and returns
  /// dL/dx (an allreduce over the ranks' partial input gradients).
  void backward(const Tensor& x, const Tensor& dy, Tensor& dx);

  Tensor& weight_grad() { return dw_; }
  Tensor& bias_grad() { return db_; }

 private:
  Communicator& comm_;
  std::int64_t in_, out_, rows_, first_;
  Tensor w_, b_, dw_, db_;
};

}  // namespace minsgd::comm
