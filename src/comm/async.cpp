#include "comm/async.hpp"

#include <chrono>
#include <string>
#include <utility>

#include "comm/cluster.hpp"
#include "obs/trace.hpp"

namespace minsgd::comm {

bool AllreduceHandle::done() const {
  if (!state_) return true;
  std::lock_guard lk(state_->mu);
  return state_->done;
}

void AllreduceHandle::wait() {
  if (!state_) return;
  std::unique_lock lk(state_->mu);
  state_->cv.wait(lk, [&] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
}

AsyncCollectiveEngine::AsyncCollectiveEngine(SimCluster& cluster, int rank)
    : comm_(cluster, rank, /*channel=*/1), rank_(rank) {
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncCollectiveEngine::AsyncCollectiveEngine(const Communicator& parent)
    : comm_(parent, /*channel=*/1), rank_(parent.physical_rank()) {
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncCollectiveEngine::~AsyncCollectiveEngine() { shutdown(); }

void AsyncCollectiveEngine::shutdown() {
  {
    std::lock_guard lk(mu_);
    if (stop_ && !worker_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

AllreduceHandle AsyncCollectiveEngine::allreduce_sum_async(
    std::span<float> data, AllreduceAlgo algo) {
  auto state = std::make_shared<detail::AsyncOpState>();
  {
    std::lock_guard lk(mu_);
    if (stop_) {
      throw std::logic_error(
          "AsyncCollectiveEngine: allreduce_sum_async after shutdown");
    }
    queue_.push_back(Work{data, algo, state});
  }
  cv_.notify_all();
  return AllreduceHandle(std::move(state));
}

void AsyncCollectiveEngine::worker_loop() {
  // The worker records trace spans into its rank's lane, like the rank
  // thread it serves.
  obs::set_thread_rank(rank_);
  for (;;) {
    Work w;
    std::exception_ptr poison;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop_ set and fully drained
      w = std::move(queue_.front());
      queue_.pop_front();
      poison = sticky_error_;
    }
    if (poison) {
      // Fail fast: after one failed collective the channel's tag sequence
      // no longer matches peers, so running later ops could pair buckets
      // across iterations. Surface the root cause instead.
      {
        std::lock_guard lk(w.state->mu);
        w.state->error = poison;
        w.state->done = true;
      }
      w.state->cv.notify_all();
      continue;
    }
    std::exception_ptr err;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      obs::ScopedSpan sp;
      if (obs::tracer().enabled()) {
        sp.start(std::string("allreduce.async.") + to_string(w.algo),
                 obs::cat::kComm);
        sp.set_bytes(static_cast<std::int64_t>(w.data.size()) * 4);
        sp.set_label(to_string(w.algo));
      }
      comm_.allreduce_sum(w.data, w.algo);
    } catch (...) {
      err = std::current_exception();
    }
    busy_ns_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count(),
                       std::memory_order_relaxed);
    ops_.fetch_add(1, std::memory_order_relaxed);
    if (err) {
      std::lock_guard lk(mu_);
      sticky_error_ = err;
    }
    {
      std::lock_guard lk(w.state->mu);
      w.state->error = err;
      w.state->done = true;
    }
    w.state->cv.notify_all();
  }
}

}  // namespace minsgd::comm
