// Momentum SGD with L2 weight decay — the baseline update rule.
#pragma once

#include <vector>

#include "optim/optimizer.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::optim {

struct SgdConfig {
  double momentum = 0.9;
  double weight_decay = 0.0005;  // paper's setting for both models
  /// Nesterov is not used by the paper; plain (heavy-ball) momentum.
};

/// v <- m*v + (g + wd*w);  w <- w - lr*v
/// Weight decay is skipped for params with decay == false (biases, norms).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(SgdConfig config = {});

  void reset() override;
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  const SgdConfig& config() const { return config_; }

 protected:
  void do_step(std::span<nn::ParamRef> params, double lr,
               const ComputeContext& ctx) override;

 private:
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

}  // namespace minsgd::optim
