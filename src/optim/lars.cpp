#include "optim/lars.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace minsgd::optim {

Lars::Lars(LarsConfig config) : config_(config) {
  if (config_.trust_coeff <= 0) {
    throw std::invalid_argument("Lars: trust_coeff must be positive");
  }
  if (config_.momentum < 0 || config_.momentum >= 1) {
    throw std::invalid_argument("Lars: momentum must be in [0, 1)");
  }
  if (config_.weight_decay < 0 || config_.eps < 0) {
    throw std::invalid_argument("Lars: negative weight_decay or eps");
  }
}

void Lars::do_step(std::span<nn::ParamRef> params, double lr,
                   const ComputeContext& ctx) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const auto& p : params) velocity_.emplace_back(p.value->shape());
  }
  if (velocity_.size() != params.size()) {
    throw std::invalid_argument("Lars::step: param list changed size");
  }
  const bool traced = obs::tracer().enabled();
  obs::ScopedSpan span;
  if (traced) {
    span.start("optim.lars", obs::cat::kCompute);
    span.set_threads(static_cast<int>(ctx.threads()));
  }
  last_local_.assign(params.size(), 0.0);
  const auto m = static_cast<float>(config_.momentum);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i];
    Tensor& v = velocity_[i];
    const bool adapt = p.decay || config_.adapt_non_decay_params;
    const double wd = p.decay ? config_.weight_decay : 0.0;

    double local = 1.0;
    if (adapt) {
      const double w_norm = l2_norm(ctx, p.value->span());
      const double g_norm = l2_norm(ctx, p.grad->span());
      local = config_.trust_coeff * w_norm /
              (g_norm + wd * w_norm + config_.eps);
      // A freshly zero-initialized tensor (w_norm == 0) gets local == 0 and
      // would never move; fall back to the global rate there.
      if (w_norm == 0.0) local = 1.0;
      if (config_.clip && local > 1.0) local = 1.0;
      last_local_[i] = local;
      // Trust-ratio gauges make the paper's core mechanism observable per
      // layer; only published while tracing so the steady-state step stays
      // free of registry lookups.
      if (traced) {
        obs::metrics().gauge("lars.local_lr." + p.name).set(local);
      }
    }

    const auto eff = static_cast<float>(lr * local);
    const auto fwd = static_cast<float>(wd);
    const std::int64_t n = p.value->numel();
    float* w = p.value->data();
    const float* g = p.grad->data();
    float* vel = v.data();
    ctx.parallel_for(
        0, n,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t j = lo; j < hi; ++j) {
            vel[j] = m * vel[j] + eff * (g[j] + fwd * w[j]);
            w[j] -= vel[j];
          }
        },
        /*grain=*/8192);
  }
}

void Lars::reset() {
  velocity_.clear();
  last_local_.clear();
}

void Lars::save_state(std::ostream& out) const {
  detail::save_tensor_vector(out, velocity_);
}

void Lars::load_state(std::istream& in) {
  detail::load_tensor_vector(in, velocity_);
  last_local_.clear();
}

}  // namespace minsgd::optim
