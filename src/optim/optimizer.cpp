#include "optim/optimizer.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace minsgd::optim::detail {

void save_tensor_vector(std::ostream& out, const std::vector<Tensor>& v) {
  const auto count = static_cast<std::uint64_t>(v.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& t : v) {
    const auto n = static_cast<std::uint64_t>(t.numel());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("optimizer state: write failed");
}

void load_tensor_vector(std::istream& in, std::vector<Tensor>& v) {
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("optimizer state: truncated");
  v.clear();
  v.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in) throw std::runtime_error("optimizer state: truncated");
    Tensor t({static_cast<std::int64_t>(n)});
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) throw std::runtime_error("optimizer state: truncated");
    v.push_back(std::move(t));
  }
}

}  // namespace minsgd::optim::detail
