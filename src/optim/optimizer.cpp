#include "optim/optimizer.hpp"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/io.hpp"

namespace minsgd::optim::detail {

void save_tensor_vector(std::ostream& out, const std::vector<Tensor>& v) {
  core::write_pod(out, static_cast<std::uint64_t>(v.size()));
  for (const auto& t : v) {
    core::write_pod(out, static_cast<std::uint64_t>(t.numel()));
    core::write_f32(out, t.span());
  }
  if (!out) throw std::runtime_error("optimizer state: write failed");
}

void load_tensor_vector(std::istream& in, std::vector<Tensor>& v) {
  std::uint64_t count = 0;
  core::read_pod(in, count);
  if (!in) throw std::runtime_error("optimizer state: truncated");
  v.clear();
  v.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t n = 0;
    core::read_pod(in, n);
    if (!in) throw std::runtime_error("optimizer state: truncated");
    Tensor t({static_cast<std::int64_t>(n)});
    core::read_f32(in, t.span());
    if (!in) throw std::runtime_error("optimizer state: truncated");
    v.push_back(std::move(t));
  }
}

}  // namespace minsgd::optim::detail
