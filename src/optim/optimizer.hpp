// Optimizer: interface shared by SGD and LARS so trainers stay generic.
//
// step() consumes the *summed-and-averaged* gradient sitting in each
// ParamRef::grad (the trainer is responsible for the allreduce and the 1/P
// scaling) and updates the parameter in place. Optimizers own their state
// (momentum buffers) keyed by position, so the params span must be the same
// sequence on every call.
#pragma once

#include <iosfwd>
#include <span>

#include "nn/layer.hpp"

namespace minsgd::optim {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update with global learning rate `lr`. `ctx` supplies the
  /// intra-op thread budget; updates are bit-identical for any thread count.
  void step(std::span<nn::ParamRef> params, double lr,
            const ComputeContext& ctx = ComputeContext::default_ctx()) {
    do_step(params, lr, ctx);
  }

  /// Clears internal state (momentum buffers).
  virtual void reset() = 0;

  /// Writes the internal state (momentum buffers) to `out`. An optimizer
  /// that has never stepped writes an empty state. Used by resumable
  /// training: momentum is part of the trajectory, so resuming a paper-
  /// style 90-epoch run without it changes the result.
  virtual void save_state(std::ostream& out) const = 0;

  /// Restores state written by save_state. The next step() must use the
  /// same parameter sequence as when the state was saved.
  virtual void load_state(std::istream& in) = 0;

 protected:
  /// Implementation hook behind the non-virtual step() above.
  virtual void do_step(std::span<nn::ParamRef> params, double lr,
                       const ComputeContext& ctx) = 0;
};

namespace detail {
/// Shared (de)serialization for a velocity-buffer vector.
void save_tensor_vector(std::ostream& out, const std::vector<Tensor>& v);
void load_tensor_vector(std::istream& in, std::vector<Tensor>& v);
}  // namespace detail

}  // namespace minsgd::optim
