// LARS: Layer-wise Adaptive Rate Scaling (You, Gitman & Ginsburg 2017).
//
// The paper's enabling algorithm. For each layer (each parameter tensor),
// compute a *local* learning rate from the ratio of the weight norm to the
// gradient norm:
//
//   local_lr = trust_coeff * ||w|| / (||g|| + weight_decay * ||w|| + eps)
//
// and take the momentum step with the product global_lr * local_lr. Layers
// whose gradients are disproportionately large relative to their weights
// (the failure mode that makes a single global lr diverge at 32K batches)
// are automatically damped, while under-updating layers are boosted.
#pragma once

#include <vector>

#include "optim/optimizer.hpp"
#include "tensor/tensor.hpp"

namespace minsgd::optim {

struct LarsConfig {
  double trust_coeff = 0.001;  // eta in the LARS paper
  double momentum = 0.9;
  double weight_decay = 0.0005;
  double eps = 1e-9;  // guards ||g|| = 0 at initialization
  /// Params with decay == false (biases, norm scales) skip both weight decay
  /// and the trust-ratio scaling and follow the plain global-lr update, as
  /// in the reference NVCaffe implementation.
  bool adapt_non_decay_params = false;
  /// LARC-style clipping (the follow-up variant adopted by Apex/DeepSpeed):
  /// cap the local multiplier at 1 so LARS can only damp, never amplify,
  /// the global schedule. Off by default (the paper uses unclipped LARS).
  bool clip = false;
};

/// LARS optimizer. Per parameter tensor p:
///   lr_local = trust * ||w|| / (||g|| + wd*||w|| + eps)    (adapted params)
///   v <- m*v + lr*lr_local*(g + wd*w);  w <- w - v
class Lars final : public Optimizer {
 public:
  explicit Lars(LarsConfig config = {});

  void reset() override;
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  const LarsConfig& config() const { return config_; }

  /// Trust ratios from the most recent step (one per param tensor, 0 for
  /// non-adapted ones). Exposed for instrumentation / the ablation bench.
  const std::vector<double>& last_local_lrs() const { return last_local_; }

 protected:
  void do_step(std::span<nn::ParamRef> params, double lr,
               const ComputeContext& ctx) override;

 private:
  LarsConfig config_;
  std::vector<Tensor> velocity_;
  std::vector<double> last_local_;
};

}  // namespace minsgd::optim
