#include "optim/schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace minsgd::optim {

ConstantLr::ConstantLr(double base) : base_(base) {
  if (base <= 0) throw std::invalid_argument("ConstantLr: base <= 0");
}

double ConstantLr::lr(std::int64_t /*iter*/) const { return base_; }

PolyLr::PolyLr(double base, std::int64_t max_iter, double power)
    : base_(base), power_(power), max_iter_(max_iter) {
  if (base <= 0) throw std::invalid_argument("PolyLr: base <= 0");
  if (max_iter <= 0) throw std::invalid_argument("PolyLr: max_iter <= 0");
  if (power < 0) throw std::invalid_argument("PolyLr: power < 0");
}

double PolyLr::lr(std::int64_t iter) const {
  if (iter >= max_iter_) return 0.0;
  const double frac =
      1.0 - static_cast<double>(iter) / static_cast<double>(max_iter_);
  return base_ * std::pow(frac, power_);
}

StepLr::StepLr(double base, std::int64_t step_size, double gamma)
    : base_(base), gamma_(gamma), step_size_(step_size) {
  if (base <= 0) throw std::invalid_argument("StepLr: base <= 0");
  if (step_size <= 0) throw std::invalid_argument("StepLr: step_size <= 0");
  if (gamma <= 0 || gamma > 1) throw std::invalid_argument("StepLr: gamma");
}

double StepLr::lr(std::int64_t iter) const {
  return base_ * std::pow(gamma_, static_cast<double>(iter / step_size_));
}

CosineLr::CosineLr(double base, std::int64_t max_iter)
    : base_(base), max_iter_(max_iter) {
  if (base <= 0) throw std::invalid_argument("CosineLr: base <= 0");
  if (max_iter <= 0) throw std::invalid_argument("CosineLr: max_iter <= 0");
}

double CosineLr::lr(std::int64_t iter) const {
  if (iter >= max_iter_) return 0.0;
  const double frac =
      static_cast<double>(iter) / static_cast<double>(max_iter_);
  return base_ * 0.5 * (1.0 + std::cos(M_PI * frac));
}

WarmupLr::WarmupLr(LrSchedulePtr inner, std::int64_t warmup_iters,
                   double start_lr)
    : inner_(std::move(inner)), warmup_iters_(warmup_iters),
      start_lr_(start_lr) {
  if (!inner_) throw std::invalid_argument("WarmupLr: null inner schedule");
  if (warmup_iters_ < 0) throw std::invalid_argument("WarmupLr: negative");
  if (start_lr_ < 0) throw std::invalid_argument("WarmupLr: start_lr < 0");
}

double WarmupLr::lr(std::int64_t iter) const {
  if (iter < warmup_iters_) {
    const double target = inner_->lr(warmup_iters_);
    const double frac = static_cast<double>(iter + 1) /
                        static_cast<double>(warmup_iters_);
    return start_lr_ + (target - start_lr_) * frac;
  }
  return inner_->lr(iter);
}

ElasticLrScale::ElasticLrScale(const LrSchedule& base, std::int64_t base_batch)
    : base_(base), base_batch_(base_batch), batch_(base_batch) {
  if (base_batch <= 0) {
    throw std::invalid_argument("ElasticLrScale: base_batch <= 0");
  }
}

void ElasticLrScale::set_batch(std::int64_t batch) {
  if (batch <= 0) throw std::invalid_argument("ElasticLrScale: batch <= 0");
  batch_ = batch;
}

double ElasticLrScale::lr(std::int64_t iter) const {
  const double base = base_.lr(iter);
  // Equal batches return the base lr verbatim (bit-exact); the scaled path
  // inlines the linear rule because base may legitimately be 0 here (poly
  // decay past max_iter), which linear_scaled_lr rejects.
  if (batch_ == base_batch_) return base;
  return base * (static_cast<double>(batch_) /
                 static_cast<double>(base_batch_));
}

double linear_scaled_lr(double base_lr, std::int64_t base_batch,
                        std::int64_t batch) {
  if (base_lr <= 0 || base_batch <= 0 || batch <= 0) {
    throw std::invalid_argument("linear_scaled_lr: non-positive argument");
  }
  return base_lr * static_cast<double>(batch) /
         static_cast<double>(base_batch);
}

std::int64_t iterations_for_epochs(std::int64_t epochs,
                                   std::int64_t dataset_size,
                                   std::int64_t batch) {
  if (epochs <= 0 || dataset_size <= 0 || batch <= 0) {
    throw std::invalid_argument("iterations_for_epochs: non-positive");
  }
  return (epochs * dataset_size + batch - 1) / batch;
}

}  // namespace minsgd::optim
