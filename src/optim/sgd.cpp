#include "optim/sgd.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace minsgd::optim {

Sgd::Sgd(SgdConfig config) : config_(config) {
  if (config_.momentum < 0 || config_.momentum >= 1) {
    throw std::invalid_argument("Sgd: momentum must be in [0, 1)");
  }
  if (config_.weight_decay < 0) {
    throw std::invalid_argument("Sgd: negative weight decay");
  }
}

void Sgd::do_step(std::span<nn::ParamRef> params, double lr,
                  const ComputeContext& ctx) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const auto& p : params) velocity_.emplace_back(p.value->shape());
  }
  if (velocity_.size() != params.size()) {
    throw std::invalid_argument("Sgd::step: param list changed size");
  }
  obs::ScopedSpan span("optim.sgd", obs::cat::kCompute);
  span.set_threads(static_cast<int>(ctx.threads()));
  const auto m = static_cast<float>(config_.momentum);
  const auto flr = static_cast<float>(lr);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i];
    Tensor& v = velocity_[i];
    const float wd =
        p.decay ? static_cast<float>(config_.weight_decay) : 0.0f;
    const std::int64_t n = p.value->numel();
    float* w = p.value->data();
    const float* g = p.grad->data();
    float* vel = v.data();
    // Pure elementwise update: disjoint writes, no reduction.
    ctx.parallel_for(
        0, n,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t j = lo; j < hi; ++j) {
            vel[j] = m * vel[j] + (g[j] + wd * w[j]);
            w[j] -= flr * vel[j];
          }
        },
        /*grain=*/8192);
  }
}

void Sgd::reset() { velocity_.clear(); }

void Sgd::save_state(std::ostream& out) const {
  detail::save_tensor_vector(out, velocity_);
}

void Sgd::load_state(std::istream& in) {
  detail::load_tensor_vector(in, velocity_);
}

}  // namespace minsgd::optim
