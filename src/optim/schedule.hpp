// Learning-rate schedules.
//
// The paper's recipes are compositions of three pieces:
//   * the linear scaling rule   (batch B -> kB implies lr eta -> k*eta),
//   * a warmup phase            (ramp from a small lr to the scaled lr),
//   * a decay policy            (poly with power 2 throughout the paper).
// Each is a separate type here so recipes read like the paper describes.
#pragma once

#include <cstdint>
#include <memory>

namespace minsgd::optim {

/// Maps a global iteration index to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double lr(std::int64_t iter) const = 0;
};

using LrSchedulePtr = std::unique_ptr<LrSchedule>;

/// lr(t) = base.
class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(double base);
  double lr(std::int64_t iter) const override;

 private:
  double base_;
};

/// Caffe's "poly" policy: lr(t) = base * (1 - t/max_iter)^power.
/// The paper uses power = 2 everywhere.
class PolyLr final : public LrSchedule {
 public:
  PolyLr(double base, std::int64_t max_iter, double power = 2.0);
  double lr(std::int64_t iter) const override;

 private:
  double base_, power_;
  std::int64_t max_iter_;
};

/// Step decay: lr(t) = base * gamma^(t / step_size).
class StepLr final : public LrSchedule {
 public:
  StepLr(double base, std::int64_t step_size, double gamma = 0.1);
  double lr(std::int64_t iter) const override;

 private:
  double base_, gamma_;
  std::int64_t step_size_;
};

/// Cosine annealing: lr(t) = base * (1 + cos(pi * t / max_iter)) / 2.
/// Not used by the paper (it predates the cosine fashion) but provided for
/// recipe experiments; decays smoothly from base to 0.
class CosineLr final : public LrSchedule {
 public:
  CosineLr(double base, std::int64_t max_iter);
  double lr(std::int64_t iter) const override;

 private:
  double base_;
  std::int64_t max_iter_;
};

/// Gradual warmup (Goyal et al. 2017): during the first `warmup_iters`
/// iterations, ramp linearly from `start_lr` to inner->lr(warmup start);
/// afterwards delegate to the inner schedule (with the warmup offset kept,
/// i.e. iteration indices are global).
class WarmupLr final : public LrSchedule {
 public:
  WarmupLr(LrSchedulePtr inner, std::int64_t warmup_iters,
           double start_lr = 0.0);
  double lr(std::int64_t iter) const override;

 private:
  LrSchedulePtr inner_;
  std::int64_t warmup_iters_;
  double start_lr_;
};

/// The linear scaling rule (Krizhevsky 2014; Goyal et al. 2017): the lr that
/// keeps per-example step size constant when the batch grows from
/// `base_batch` to `batch`.
double linear_scaled_lr(double base_lr, std::int64_t base_batch,
                        std::int64_t batch);

/// Elastic-training LR hook: wraps a base schedule authored for
/// `base_batch` and applies the linear scaling rule for the *current*
/// effective global batch, which changes whenever the world resizes.
/// While batch == base_batch the scale factor is exactly 1.0 (an int64
/// ratio of equal values), so a run that never resizes is bit-identical to
/// the unwrapped schedule. Not owning; the base schedule must outlive it.
class ElasticLrScale final : public LrSchedule {
 public:
  ElasticLrScale(const LrSchedule& base, std::int64_t base_batch);
  double lr(std::int64_t iter) const override;

  /// Called after a membership change commits, with the new world's
  /// effective global batch.
  void set_batch(std::int64_t batch);
  std::int64_t batch() const { return batch_; }
  std::int64_t base_batch() const { return base_batch_; }

 private:
  const LrSchedule& base_;
  std::int64_t base_batch_;
  std::int64_t batch_;
};

/// Iterations for a fixed-epoch budget: ceil(epochs * dataset_size / batch).
/// The paper's central bookkeeping identity (Table 2, Figures 8-10).
std::int64_t iterations_for_epochs(std::int64_t epochs,
                                   std::int64_t dataset_size,
                                   std::int64_t batch);

}  // namespace minsgd::optim
