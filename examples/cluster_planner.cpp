// Cluster planner: answer "how long would this training run take on that
// cluster?" with the paper-calibrated performance model.
//
//   $ ./cluster_planner [model] [batch] [nodes] [epochs]
//     model: alexnet | resnet50   (default resnet50)
//     batch: global batch size    (default 32768)
//     nodes: cluster size         (default 2048)
//     epochs:                     (default 90)
//
// This is the tool-ified version of the paper's Tables 2/8/9: profile the
// network architecture for FLOPs and parameters, pick a device and
// interconnect, and project iterations, per-iteration time, total time,
// and communication volume.
#include <cstdio>
#include <cstring>
#include <string>

#include "nn/analysis.hpp"
#include "nn/models.hpp"
#include "perf/cost_model.hpp"
#include "perf/energy.hpp"
#include "perf/specs.hpp"

using namespace minsgd;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "resnet50";
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 32768;
  const int nodes = argc > 3 ? std::atoi(argv[3]) : 2048;
  const std::int64_t epochs = argc > 4 ? std::atoll(argv[4]) : 90;

  std::unique_ptr<nn::Network> net;
  Shape input;
  if (model == "alexnet") {
    net = nn::alexnet();
    input = nn::alexnet_input();
  } else if (model == "resnet50") {
    net = nn::resnet(50);
    input = nn::resnet_input();
  } else {
    std::fprintf(stderr, "unknown model '%s' (alexnet|resnet50)\n",
                 model.c_str());
    return 1;
  }
  if (batch <= 0 || nodes <= 0 || epochs <= 0 || batch % nodes != 0) {
    std::fprintf(stderr,
                 "batch/nodes/epochs must be positive, nodes | batch\n");
    return 1;
  }

  const auto prof = nn::profile_model(*net, input);
  std::printf("model %s: %.1fM params, %.2f GFLOP/image, scaling ratio %.0f\n",
              prof.name.c_str(), prof.params / 1e6,
              prof.flops_per_image / 1e9, prof.scaling_ratio());

  const perf::WorkloadSpec work{prof.flops_per_image, prof.params, 1'280'000,
                                epochs, 3.0};
  const perf::RunSpec run{batch, nodes, perf::CommModel::kRing};

  struct Option {
    perf::DeviceSpec dev;
    perf::NetworkSpec net;
  };
  const Option options[] = {
      {perf::intel_knl7250(), perf::intel_qdr_ib()},
      {perf::intel_skylake8160(), perf::intel_qdr_ib()},
      {perf::nvidia_p100(), perf::mellanox_fdr_ib()},
  };

  std::printf("\nplan: batch %lld over %d nodes (local %lld), %lld epochs\n",
              static_cast<long long>(batch), nodes,
              static_cast<long long>(batch / nodes),
              static_cast<long long>(epochs));
  std::printf("%-28s %10s %10s %10s %12s\n", "device + network", "iters",
              "t_comp", "t_comm", "total");
  for (const auto& o : options) {
    const auto p = perf::project_training(work, run, o.dev, o.net);
    std::printf("%-28s %10lld %9.3fs %9.4fs %9.1f min\n", o.dev.name.c_str(),
                static_cast<long long>(p.iterations), p.t_comp, p.t_comm,
                p.total_seconds() / 60.0);
  }

  // Energy estimate for the whole run on the first option.
  const auto p = perf::project_training(work, run, options[0].dev,
                                        options[0].net);
  const auto e = perf::estimate_iteration_energy(
      3 * prof.flops_per_image * batch, prof.params * nodes, /*hops=*/2);
  std::printf("\nenergy model (per %lld-iteration run): compute %.1f kJ, "
              "gradient movement %.1f kJ\n",
              static_cast<long long>(p.iterations),
              e.compute_j * p.iterations / 1e3,
              e.comm_j * p.iterations / 1e3);
  std::printf("\n(total comm volume: %.1f GB; messages: %lld)\n",
              static_cast<double>(p.comm_bytes) / 1e9,
              static_cast<long long>(p.messages));
  return 0;
}
