// Checkpoint / resume: train, save, reload into a fresh process-worth of
// state, verify identical inference, continue training.
//
//   $ ./checkpoint_resume
//
// Long cluster runs (the paper's took up to 45 hours) survive preemption
// by checkpointing; this example exercises the library's save/load path
// end to end.
#include <cstdio>

#include "core/proxy.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "optim/sgd.hpp"
#include "train/trainer.hpp"

using namespace minsgd;

int main() {
  auto proxy = core::bench_proxy();
  data::SyntheticImageNet ds(proxy.dataset);
  const std::string path = "checkpoint_demo.bin";

  // Phase 1: train for half the budget and checkpoint.
  auto net = proxy.alexnet_factory()();
  optim::Sgd opt({.momentum = 0.9, .weight_decay = 0.0005});
  optim::ConstantLr lr(0.05);
  train::TrainOptions options;
  options.global_batch = proxy.base_batch;
  options.epochs = 4;
  const auto phase1 = train::train_single(*net, opt, lr, ds, options);
  nn::save_checkpoint(*net, path);
  std::printf("phase 1: %lld epochs, test acc %.1f%% -> saved %s\n",
              static_cast<long long>(options.epochs),
              100 * phase1.final_test_acc, path.c_str());

  // Phase 2: fresh replica, load, verify identical evaluation.
  auto resumed = proxy.alexnet_factory()();
  Rng rng(999);  // deliberately different init, about to be overwritten
  resumed->init(rng);
  nn::load_checkpoint(*resumed, path);
  const double acc_loaded = train::evaluate(*resumed, ds);
  std::printf("reloaded:  test acc %.1f%% (same weights, same accuracy)\n",
              100 * acc_loaded);

  // Phase 3: continue training from the checkpoint (fresh momentum, as
  // when resuming across processes without optimizer state).
  optim::Sgd opt2({.momentum = 0.9, .weight_decay = 0.0005});
  auto params = resumed->params();
  data::ShardedLoader loader(ds, options.global_batch);
  nn::SoftmaxCrossEntropy loss;
  Tensor logits, dlogits, dx;
  for (std::int64_t epoch = 0; epoch < 4; ++epoch) {
    for (std::int64_t it = 0; it < loader.iterations_per_epoch(); ++it) {
      const auto batch = loader.load_train(epoch + 100, it);
      resumed->zero_grad();
      resumed->forward(batch.x, logits, true);
      loss.forward_backward(logits, batch.labels, &dlogits);
      resumed->backward(batch.x, logits, dlogits, dx);
      opt2.step(params, 0.02);
    }
  }
  std::printf("resumed +4 epochs: test acc %.1f%%\n",
              100 * train::evaluate(*resumed, ds));
  std::remove(path.c_str());
  return 0;
}
