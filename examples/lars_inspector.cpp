// LARS inspector: watch the layer-wise trust ratios that make large-batch
// training work.
//
//   $ ./lars_inspector
//
// Trains the proxy model at a large batch with LARS and prints, for the
// first few iterations, each layer's ||w||, ||g|| and resulting local
// learning-rate multiplier. The point to notice: the multipliers span
// orders of magnitude across layers — no single global learning rate could
// be right for all of them, which is exactly the paper's argument for
// layer-wise adaptation.
#include <cstdio>

#include "core/proxy.hpp"
#include "data/loader.hpp"
#include "nn/loss.hpp"
#include "optim/lars.hpp"
#include "optim/schedule.hpp"
#include "tensor/ops.hpp"

using namespace minsgd;

int main() {
  auto proxy = core::bench_proxy();
  data::SyntheticImageNet dataset(proxy.dataset);
  auto net = proxy.alexnet_factory()();
  Rng rng(7);
  net->init(rng);
  auto params = net->params();

  const std::int64_t batch = proxy.base_batch * 16;
  data::ShardedLoader loader(dataset, batch);
  nn::SoftmaxCrossEntropy loss;
  optim::Lars lars({.trust_coeff = proxy.lars_trust,
                    .momentum = 0.9,
                    .weight_decay = 0.0005});
  optim::ConstantLr lr(optim::linear_scaled_lr(proxy.base_lr,
                                               proxy.base_batch, batch));

  std::printf("batch %lld, global lr %.3f, trust coefficient %.3f\n\n",
              static_cast<long long>(batch), lr.lr(0), proxy.lars_trust);

  Tensor logits, dlogits, dx;
  for (std::int64_t iter = 0; iter < 3; ++iter) {
    const auto b = loader.load_train(0, iter);
    net->zero_grad();
    net->forward(b.x, logits, true);
    loss.forward_backward(logits, b.labels, &dlogits);
    net->backward(b.x, logits, dlogits, dx);
    lars.step(params, lr.lr(iter));

    std::printf("iteration %lld\n", static_cast<long long>(iter));
    std::printf("  %-40s %10s %10s %12s\n", "parameter", "||w||", "||g||",
                "local mult");
    const auto& locals = lars.last_local_lrs();
    for (std::size_t i = 0; i < params.size(); ++i) {
      const double wn = l2_norm(params[i].value->span());
      const double gn = l2_norm(params[i].grad->span());
      if (locals[i] > 0) {
        std::printf("  %-40s %10.3f %10.4f %12.4f\n",
                    params[i].name.c_str(), wn, gn, locals[i]);
      } else {
        std::printf("  %-40s %10.3f %10.4f %12s\n", params[i].name.c_str(),
                    wn, gn, "(global)");
      }
    }
    double lo = 1e30, hi = 0.0;
    for (double l : locals) {
      if (l > 0) {
        lo = std::min(lo, l);
        hi = std::max(hi, l);
      }
    }
    std::printf("  spread: max/min local multiplier = %.1fx\n\n", hi / lo);
  }
  std::printf(
      "A single global LR would over-drive the layers at the top of the\n"
      "spread and starve the ones at the bottom; LARS gives each layer the\n"
      "step size its own weight/gradient geometry asks for.\n");
  return 0;
}
