// Tracing example: record a Chrome-loadable trace of a distributed
// training run and print the span summary + metrics snapshot.
//
//   $ ./trace_training [world] [trace.json]
//     world: number of simulated ranks (default 4)
//     path:  output trace file (default trace.json)
//
// Tracing is off by default everywhere in minsgd; this example flips it on,
// runs a short synchronous data-parallel job on the simulated cluster, and
// exports everything the instrumentation captured:
//   - per-rank lanes with nested spans (phase.* > forward.* > fwd.<layer>,
//     allreduce.<algo> with byte counts) — open the JSON in
//     chrome://tracing or ui.perfetto.dev
//   - a hierarchical text summary (total/count/mean/p95 per span name)
//   - a metrics snapshot (per-collective wire traffic, LARS trust ratios)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/proxy.hpp"
#include "core/recipe.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace minsgd;

int main(int argc, char** argv) {
  const int world = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::string trace_path = argc > 2 ? argv[2] : "trace.json";
  if (world <= 0) {
    std::fprintf(stderr, "usage: %s [world>0] [trace.json]\n", argv[0]);
    return 1;
  }

  auto proxy = core::micro_proxy();
  data::SyntheticImageNet dataset(proxy.dataset);

  core::RecipeConfig rc = proxy.recipe(proxy.base_batch * world,
                                       core::LrRule::kLars);
  rc.epochs = 2;  // short: the trace, not the accuracy, is the point
  rc.warmup_epochs = 0.5;

  obs::tracer().set_enabled(true);  // default is off: opt in explicitly
  std::printf("tracing %d ranks for %lld epoch(s)...\n", world,
              static_cast<long long>(rc.epochs));
  const auto res = core::run_recipe_distributed(
      proxy.alexnet_factory(), rc, dataset, world, comm::AllreduceAlgo::kRing);
  obs::tracer().set_enabled(false);

  obs::tracer().write_chrome_trace(trace_path);
  std::printf("\n%zu spans -> %s (open in chrome://tracing or "
              "ui.perfetto.dev)\n\n",
              obs::tracer().span_count(), trace_path.c_str());
  obs::tracer().write_summary(std::cout);

  std::printf("\n--- metrics snapshot ---\n");
  obs::metrics().write_jsonl_snapshot(std::cout);

  std::printf("\ntrained to %.1f%% test accuracy over %lld iterations\n",
              100 * res.result.best_test_acc,
              static_cast<long long>(res.iterations));
  return 0;
}
