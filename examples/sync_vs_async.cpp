// Sync vs async: why the paper (and everyone scaling ImageNet) chose
// synchronous SGD.
//
//   $ ./sync_vs_async [workers]
//
// Trains the same model three ways with the same per-worker work:
//   1. single process (the sequential reference),
//   2. synchronous data-parallel on a simulated cluster (allreduce),
//   3. asynchronous parameter server (Downpour-style, no barriers).
// The sync run matches the sequential reference's learning curve exactly
// (sequential consistency); the async run's result depends on gradient
// staleness, which is reported.
#include <cstdio>
#include <cstdlib>

#include "core/proxy.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "train/async_trainer.hpp"
#include "train/easgd.hpp"
#include "train/trainer.hpp"

using namespace minsgd;

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  if (workers <= 0) {
    std::fprintf(stderr, "usage: %s [workers>0]\n", argv[0]);
    return 1;
  }

  auto proxy = core::bench_proxy();
  // Dropout/BN introduce per-replica randomness; use the deterministic
  // ResNet-free proxy for an exact consistency demonstration.
  auto factory = [&] {
    auto net = std::make_unique<nn::Network>("demo");
    net->emplace<nn::Conv2d>(3, 16, 3, 1, 1);
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(2, 2);
    net->emplace<nn::Flatten>();
    net->emplace<nn::Linear>(
        16 * (proxy.dataset.resolution / 2) * (proxy.dataset.resolution / 2),
        proxy.dataset.classes);
    return net;
  };
  data::SyntheticImageNet dataset(proxy.dataset);

  train::TrainOptions options;
  options.global_batch = 64;
  options.epochs = 6;
  optim::ConstantLr lr(0.02);

  // 1. Sequential reference.
  auto net = factory();
  optim::Sgd opt({.momentum = 0.9, .weight_decay = 0.0005});
  const auto seq = train::train_single(*net, opt, lr, dataset, options);
  std::printf("sequential:        final loss %.4f, test acc %.1f%%\n",
              seq.epochs.back().train_loss, 100 * seq.final_test_acc);

  // 2. Synchronous data-parallel.
  const auto sync = train::train_sync_data_parallel(
      factory,
      [] {
        return std::make_unique<optim::Sgd>(
            optim::SgdConfig{.momentum = 0.9, .weight_decay = 0.0005});
      },
      lr, dataset, options, workers, comm::AllreduceAlgo::kRing);
  std::printf("sync (%d workers): final loss %.4f, test acc %.1f%%   "
              "<- matches sequential\n",
              workers, sync.result.epochs.back().train_loss,
              100 * sync.result.final_test_acc);

  // 3. Asynchronous parameter server.
  const auto async = train::train_async_param_server(factory, lr, dataset,
                                                     options, workers);
  std::printf("async (%d workers): final loss %.4f, test acc %.1f%%   "
              "max staleness %lld update(s)\n",
              workers, async.final_train_loss, 100 * async.final_test_acc,
              static_cast<long long>(async.max_staleness));

  // 4. Elastic Averaging SGD (the paper's other cited async scheme).
  const auto easgd =
      train::train_easgd(factory, lr, dataset, options, workers);
  std::printf("EASGD (%d workers): final loss %.4f, center acc %.1f%%  "
              "%lld elastic syncs\n",
              workers, easgd.final_train_loss, 100 * easgd.center_test_acc,
              static_cast<long long>(easgd.elastic_updates));

  std::printf(
      "\nSequential consistency is what makes the sync result debuggable:\n"
      "any world size computes the same weights as one process. The async\n"
      "run has no such guarantee — its trajectory depends on thread timing\n"
      "and stale gradients, which is why it destabilizes at scale.\n");
  return 0;
}
