// Fault tolerance: crash a rank mid-epoch, recover from the checkpoint,
// and measure what stragglers cost synchronous SGD.
//
//   $ ./fault_tolerance
//
// At the paper's scale (1024-2048 KNL nodes, up to 45-hour runs) node
// failure is an expectation, not an edge case. This example exercises the
// fault-injection layer on three scenarios:
//
//   1. baseline     - fault-free run, for reference weights and timing;
//   2. crash        - rank 1 is killed mid-epoch by the injector; the
//                     driver catches the failure, rebuilds the cluster, and
//                     resumes every rank from the last checkpoint. Final
//                     weights are verified bit-identical to the baseline;
//   3. stragglers   - random send delays (no data loss). Synchronous SGD
//                     runs at the speed of the slowest rank, so a small
//                     per-message delay inflates wall time while leaving
//                     the result untouched.
#include <chrono>
#include <cstdio>
#include <memory>

#include "comm/fault.hpp"
#include "core/proxy.hpp"
#include "optim/sgd.hpp"
#include "train/fault_tolerant.hpp"

using namespace minsgd;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

train::FaultTolerantResult run_scenario(
    const char* name, const core::ProxyScale& proxy,
    const data::SyntheticImageNet& ds,
    std::shared_ptr<comm::FaultInjector> injector, double* elapsed) {
  const int world = 4;
  train::FaultTolerantOptions options;
  options.train.global_batch = proxy.base_batch;
  options.train.epochs = 3;
  options.train.eval_every = 8;  // weights + timing are the point here
  options.checkpoint_every = 4;
  options.checkpoint_path = std::string("ft_demo_") + name + ".ckpt";
  options.recv_timeout = std::chrono::milliseconds(10000);

  optim::ConstantLr lr(proxy.base_lr);
  auto opt_factory = [] {
    return std::make_unique<optim::Sgd>(
        optim::SgdConfig{.momentum = 0.9, .weight_decay = 0.0005});
  };
  const auto t0 = Clock::now();
  auto out = train::train_sync_fault_tolerant(proxy.alexnet_factory(),
                                              opt_factory, lr, ds, options,
                                              world, std::move(injector));
  *elapsed = seconds_since(t0);
  std::printf(
      "%-10s  %5.2fs  iters %3lld  restarts %d  checkpoints %lld  "
      "dropped %lld delayed %lld crashes %lld\n",
      name, *elapsed, static_cast<long long>(out.iterations), out.restarts,
      static_cast<long long>(out.checkpoints_written),
      static_cast<long long>(out.faults.dropped),
      static_cast<long long>(out.faults.delayed),
      static_cast<long long>(out.faults.crashes));
  return out;
}

}  // namespace

int main() {
  auto proxy = core::micro_proxy();
  data::SyntheticImageNet ds(proxy.dataset);
  std::printf("fault tolerance demo: world=4, %lld-image proxy dataset\n\n",
              static_cast<long long>(proxy.dataset.train_size));
  std::printf("%-10s  %6s  %s\n", "scenario", "time", "stats");

  // 1. Fault-free baseline.
  double t_base = 0.0;
  const auto baseline = run_scenario("baseline", proxy, ds, nullptr, &t_base);

  // 2. Kill rank 1 mid-epoch; recover from the checkpoint.
  comm::FaultPlan crash;
  crash.crash_rank = 1;
  crash.crash_at_send = 120;  // a few iterations in: mid-epoch, post-ckpt
  double t_crash = 0.0;
  const auto recovered = run_scenario(
      "crash", proxy, ds, std::make_shared<comm::FaultInjector>(crash, 4),
      &t_crash);
  const bool exact = recovered.final_weights == baseline.final_weights;
  std::printf("            -> recovered weights %s the baseline's\n",
              exact ? "bit-identical to" : "DIFFER from");

  // 3. Stragglers: 2%% of sends stalled for 3 ms each.
  comm::FaultPlan slow;
  slow.delay_prob = 0.02;
  slow.delay = std::chrono::milliseconds(3);
  double t_slow = 0.0;
  const auto straggled = run_scenario(
      "straggler", proxy, ds, std::make_shared<comm::FaultInjector>(slow, 4),
      &t_slow);
  const bool same = straggled.final_weights == baseline.final_weights;
  std::printf(
      "            -> %.1fx slower than baseline, weights %s\n",
      t_base > 0 ? t_slow / t_base : 0.0,
      same ? "unchanged (sync SGD waits, it does not drift)" : "CHANGED");

  return (exact && same && recovered.restarts >= 1) ? 0 : 1;
}
