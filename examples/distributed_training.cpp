// Distributed training example: synchronous data-parallel SGD on a
// simulated cluster, with the collective algorithm under your control.
//
//   $ ./distributed_training [world] [algo]
//     world: number of simulated ranks (default 8)
//     algo:  star | ring | tree | rhd   (default ring)
//
// Demonstrates the paper's Figure 2(a) structure: every rank trains a model
// replica on its own data shard; gradients are summed with an allreduce
// each iteration; every replica applies the identical update. The traffic
// meter reports exactly how many messages and bytes the chosen collective
// put on the (simulated) wire.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/proxy.hpp"
#include "core/recipe.hpp"

using namespace minsgd;

namespace {

comm::AllreduceAlgo parse_algo(const char* s) {
  if (std::strcmp(s, "star") == 0) return comm::AllreduceAlgo::kStar;
  if (std::strcmp(s, "tree") == 0) return comm::AllreduceAlgo::kTree;
  if (std::strcmp(s, "rhd") == 0) return comm::AllreduceAlgo::kRecursiveHalving;
  return comm::AllreduceAlgo::kRing;
}

}  // namespace

int main(int argc, char** argv) {
  const int world = argc > 1 ? std::atoi(argv[1]) : 8;
  const auto algo = parse_algo(argc > 2 ? argv[2] : "ring");
  if (world <= 0) {
    std::fprintf(stderr, "usage: %s [world>0] [star|ring|tree|rhd]\n",
                 argv[0]);
    return 1;
  }

  auto proxy = core::bench_proxy();
  data::SyntheticImageNet dataset(proxy.dataset);

  // A global batch divisible by the world size; each rank sees 1/world.
  core::RecipeConfig rc = proxy.recipe(proxy.base_batch * 8,
                                       core::LrRule::kLars);
  rc.epochs = 6;
  rc.warmup_epochs = 1.0;
  std::printf("training on %d simulated ranks, allreduce=%s, "
              "global batch %lld (local %lld)\n",
              world, comm::to_string(algo),
              static_cast<long long>(rc.global_batch),
              static_cast<long long>(rc.global_batch / world));

  const auto res = core::run_recipe_distributed(proxy.alexnet_factory(), rc,
                                                dataset, world, algo);

  std::printf("\nresult: best test accuracy %.1f%% over %lld iterations\n",
              100 * res.result.best_test_acc,
              static_cast<long long>(res.iterations));
  std::printf("wire traffic: %lld messages, %.2f MB total\n",
              static_cast<long long>(res.traffic.messages),
              static_cast<double>(res.traffic.bytes) / 1e6);
  std::printf(
      "\nTry: %s 8 star   — watch the byte count blow up at the root.\n"
      "     %s 16 ring  — bandwidth-optimal, the production choice.\n",
      argv[0], argv[0]);
  return 0;
}
