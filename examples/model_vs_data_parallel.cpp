// Model parallelism vs data parallelism (paper Figure 2): why everyone
// scaling ImageNet — including this paper — chose data parallelism.
//
//   $ ./model_vs_data_parallel [world]
//
// Runs one training step of a fully connected layer both ways on the same
// simulated cluster and compares the bytes each scheme puts on the wire:
//   * model-parallel: the layer's weights are partitioned (Figure 2(b));
//     every forward allgathers activations, every backward allreduces
//     input gradients — traffic scales with the *batch*.
//   * data-parallel: the batch is partitioned (Figure 2(a)); one gradient
//     allreduce per step — traffic scales with the *model*.
// For DNN-sized layers and ImageNet-sized batches, the data-parallel side
// wins unless the layer is enormous relative to the activations, which is
// exactly the paper's conclusion.
#include <cstdio>
#include <cstdlib>

#include "comm/cluster.hpp"
#include "comm/model_parallel.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

using namespace minsgd;

namespace {

comm::TrafficStats model_parallel_step(int world, std::int64_t in,
                                       std::int64_t out, std::int64_t batch) {
  Tensor x({batch, in}), dy({batch, out});
  Rng rng(3);
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  rng.fill_normal(dy.span(), 0.0f, 0.1f);
  comm::SimCluster cluster(world);
  cluster.run([&](comm::Communicator& comm) {
    comm::ShardedLinear layer(comm, in, out);
    layer.init(7);
    Tensor y, dx;
    layer.forward(x, y);
    layer.backward(x, dy, dx);
  });
  return cluster.total_traffic();
}

comm::TrafficStats data_parallel_step(int world, std::int64_t in,
                                      std::int64_t out, std::int64_t batch) {
  Tensor x({batch, in}), dy({batch, out});
  Rng rng(3);
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  rng.fill_normal(dy.span(), 0.0f, 0.1f);
  comm::SimCluster cluster(world);
  cluster.run([&](comm::Communicator& comm) {
    nn::Linear layer(in, out);
    Rng lrng(7);
    nn::he_normal(layer.weight(), in, lrng);
    layer.bias().zero();
    const std::int64_t local = batch / world;
    Tensor xl({local, in}), dyl({local, out});
    copy(std::span<const float>(x.data() + comm.rank() * local * in,
                                static_cast<std::size_t>(local * in)),
         xl.span());
    copy(std::span<const float>(dy.data() + comm.rank() * local * out,
                                static_cast<std::size_t>(local * out)),
         dyl.span());
    Tensor y, dx;
    layer.forward(xl, y, true);
    for (auto& p : layer.params()) p.grad->zero();
    layer.backward(xl, y, dyl, dx);
    // The one communication of the data-parallel step: gradient allreduce.
    for (auto& p : layer.params()) {
      comm.allreduce_sum(p.grad->span(), comm::AllreduceAlgo::kRing);
    }
  });
  return cluster.total_traffic();
}

}  // namespace

int main(int argc, char** argv) {
  const int world = argc > 1 ? std::atoi(argv[1]) : 4;
  if (world <= 0) {
    std::fprintf(stderr, "usage: %s [world>0]\n", argv[0]);
    return 1;
  }
  const std::int64_t in = 512, out = 512;
  std::printf("layer: linear %lldx%lld (%lld params), %d ranks\n\n",
              static_cast<long long>(in), static_cast<long long>(out),
              static_cast<long long>(in * out), world);

  std::printf("%10s %22s %22s %10s\n", "batch", "model-parallel bytes",
              "data-parallel bytes", "winner");
  for (std::int64_t batch = 16; batch <= 4096; batch *= 4) {
    const auto mp = model_parallel_step(world, in, out, batch);
    const auto dp = data_parallel_step(world, in, out, batch);
    std::printf("%10lld %22lld %22lld %10s\n",
                static_cast<long long>(batch),
                static_cast<long long>(mp.bytes),
                static_cast<long long>(dp.bytes),
                mp.bytes < dp.bytes ? "model" : "data");
  }
  std::printf(
      "\nThe crossover in action: model-parallel traffic grows with the\n"
      "batch (activations cross the partition boundary), data-parallel\n"
      "traffic is the fixed gradient size. Large-batch ImageNet training\n"
      "lives far to the right of the crossover, so the paper replicates\n"
      "the model and shards the data (Figure 2(a)) — and spends its\n"
      "ingenuity (LARS) on making the big batch trainable instead.\n");
  return 0;
}
