// Elastic training: ranks join and leave a live run without a restart.
//
//   $ ./elastic_training
//
// At the paper's scale (1024-2048 KNL nodes) a fixed world is a fiction:
// nodes fail, and batch-scheduled clusters grow and shrink allocations
// mid-job. The elastic trainer (train/elastic.hpp) keeps the synchronous
// run alive across membership changes: survivors agree on a new view
// (comm/membership.hpp), re-form the communicator under a fresh generation
// tag, re-shard the data, rescale the LR per the linear scaling rule, and
// admit joiners by broadcasting the full training state.
//
// Two scenarios:
//   1. scheduled   - start 3-wide, rank 2 leaves a third of the way in,
//                    rank 3 (a standby slot) joins two thirds in;
//   2. crash       - the fault injector kills rank 2 mid-run; survivors
//                    time out, reconfigure to a 2-wide view, and finish.
#include <cstdio>
#include <memory>

#include "comm/fault.hpp"
#include "comm/membership.hpp"
#include "core/proxy.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "train/elastic.hpp"

using namespace minsgd;

namespace {

void print_reconfigs(const train::ElasticResult& res) {
  std::printf("  %d reconfiguration(s):\n", res.reconfigurations);
  for (const auto& rec : res.reconfigs) {
    std::printf("    gen %lld at iter %lld: world -> %d  (pause %.2f ms, "
                "%d attempt(s)%s)\n",
                static_cast<long long>(rec.generation),
                static_cast<long long>(rec.at_iter), rec.world,
                static_cast<double>(rec.pause_ns) / 1e6, rec.attempts,
                rec.fault_triggered ? ", fault-triggered" : "");
  }
}

}  // namespace

int main() {
  auto proxy = core::micro_proxy();
  data::SyntheticImageNet ds(proxy.dataset);

  optim::ConstantLr lr(proxy.base_lr);
  auto opt_factory = [] {
    return std::make_unique<optim::Sgd>(
        optim::SgdConfig{.momentum = 0.9, .weight_decay = 0.0005});
  };

  train::ElasticOptions eo;
  eo.train.verbose = true;
  eo.train.eval_every = 1;
  eo.train.detect_divergence = false;
  eo.local_batch = 16;
  eo.initial_world = 3;
  eo.max_world = 4;
  eo.total_iterations = 36;

  std::printf("=== scenario 1: scheduled shrink + grow ===\n");
  std::printf("start 3-wide; rank 2 leaves at iter 12, rank 3 joins at "
              "iter 24\n(the joiner receives the full training state over "
              "the new generation's channel before its first step)\n\n");
  eo.events = {
      {12, comm::ElasticEventKind::kLeave, 2},
      {24, comm::ElasticEventKind::kJoin, 3},
  };
  const auto scheduled =
      train::train_sync_elastic(proxy.alexnet_factory(), opt_factory, lr, ds,
                                eo);
  std::printf("\n  completed %lld iterations, best test acc %.1f%%\n",
              static_cast<long long>(scheduled.iterations),
              100.0 * scheduled.result.best_test_acc);
  print_reconfigs(scheduled);

  std::printf("\n=== scenario 2: crash-triggered shrink ===\n");
  std::printf("rank 2's 40th send kills it; survivors hit a recv timeout, "
              "rendezvous,\nand continue 2-wide — no checkpoint reload, no "
              "full-cluster restart\n\n");
  eo.events.clear();
  eo.recv_timeout = std::chrono::milliseconds(500);
  comm::FaultPlan plan;
  plan.crash_rank = 2;
  plan.crash_at_send = 40;
  const auto crashed = train::train_sync_elastic(
      proxy.alexnet_factory(), opt_factory, lr, ds, eo,
      std::make_shared<comm::FaultInjector>(plan, eo.max_world));
  std::printf("\n  completed %lld iterations, crashes %lld, best test acc "
              "%.1f%%\n",
              static_cast<long long>(crashed.iterations),
              static_cast<long long>(crashed.faults.crashes),
              100.0 * crashed.result.best_test_acc);
  print_reconfigs(crashed);

  std::printf("\nThe LR follows the linear scaling rule across every resize "
              "(lr ~ live\nglobal batch), so the schedule a window reports "
              "is the one a fixed-world\nrun of that size would use — see "
              "DESIGN.md section 12 for the protocol.\n");
  return 0;
}
