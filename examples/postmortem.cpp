// Reading a postmortem: the flight recorder as a distributed black box.
//
//   $ ./postmortem
//
// Every rank carries an always-on, fixed-capacity flight recorder
// (obs/flight.hpp) that logs compact collective begin/arrive/end events as
// it trains. When a run dies — injected crash, CommTimeout, MINSGD_CHECK
// failure — SimCluster::run dumps the last events of *every* rank into one
// merged postmortem.json before rethrowing. This example stages exactly
// that scenario and then plays investigator:
//
//   1. world=4 cluster runs allreduce steps; rank 2 is a compute-side
//      straggler (it sleeps 2 ms before every outermost collective, so it
//      always *arrives* late), and rank 1 is scheduled to crash mid-run;
//   2. the crash unwinds all four ranks; the driver catches the aggregated
//      failure and finds postmortem_demo.json on disk;
//   3. the analyzer joins the events across ranks by (channel, tag,
//      generation, op): groups where all 4 ranks checked in are "matched",
//      the missing ranks of unmatched tail groups point at the crash, and
//      the per-group last-arrival margins accumulate into straggler blame —
//      naming rank 2 without any per-rank timing instrumentation.
//
// The same dump can be inspected offline:
//
//   $ python3 tools/trace/analyze.py postmortem_demo.json
#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/fault.hpp"
#include "obs/flight.hpp"
#include "obs/postmortem.hpp"

using namespace minsgd;

int main() {
  const int world = 4;
  const char* dump = "postmortem_demo.json";
  obs::set_postmortem_path(dump);
  obs::flight().clear();

  // Rank 2 straggles at every collective entry; rank 1 crashes after its
  // 60th send — a few training steps in.
  comm::FaultPlan plan;
  plan.straggler_rank = 2;
  plan.straggler_stall = std::chrono::milliseconds(2);
  plan.crash_rank = 1;
  plan.crash_at_send = 60;

  comm::SimCluster cluster(world);
  cluster.set_fault_injector(std::make_shared<comm::FaultInjector>(plan, world));

  std::printf("running world=%d with a rank-2 straggler and a rank-1 crash "
              "bomb...\n", world);
  try {
    cluster.run([](comm::Communicator& comm) {
      std::vector<float> grad(256, 1.0f);
      for (int it = 0;; ++it) {
        comm.allreduce_sum(grad, comm::AllreduceAlgo::kRing);
        comm.barrier();
        MINSGD_FLIGHT(obs::FlightKind::kStep, obs::FlightOp::kNone, 0, 0, 0,
                      0, it);
      }
    });
    std::printf("unexpected: the run survived\n");
    return 1;
  } catch (const std::exception& e) {
    std::printf("\nthe run died, as staged:\n  %s\n", e.what());
  }

  // The black box is already on disk — SimCluster::run wrote it while the
  // exception was in flight. Read it back and attribute.
  const obs::Postmortem pm = obs::read_postmortem_file(dump);
  std::printf("\n%s: %zu events from the final moments, reason:\n  %s\n\n",
              dump, pm.events.size(), pm.info.reason.c_str());

  const obs::FlightAnalysis a = obs::analyze_flight(pm.events, pm.info.world);
  obs::write_analysis(std::cout, a);

  std::printf("\nverdict: %s\n",
              a.straggler_rank == 2
                  ? "the analyzer blames rank 2 — the injected straggler"
                  : "straggler attribution missed the injected rank");
  std::printf("offline twin: python3 tools/trace/analyze.py %s\n", dump);
  return a.straggler_rank == 2 && a.match_rate > 0.5 ? 0 : 1;
}
