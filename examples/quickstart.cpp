// Quickstart: train a small model with the large-batch LARS recipe.
//
//   $ ./quickstart
//
// Builds a synthetic ImageNet-style dataset, trains the AlexNet-flavored
// proxy twice in the same epoch budget — once at the base batch with plain
// momentum SGD, once at 16x the batch with LARS — and shows that the two
// reach the same test accuracy. This is the paper's core claim in under a
// minute of CPU time.
#include <cstdio>

#include "core/proxy.hpp"
#include "core/recipe.hpp"

using namespace minsgd;

int main() {
  // 1. A dataset. SyntheticImageNet is the bundled ImageNet stand-in;
  //    swap in your own data source by implementing the same interface.
  auto proxy = core::bench_proxy();
  data::SyntheticImageNet dataset(proxy.dataset);
  std::printf("dataset: %lld train / %lld test, %lld classes, %lldx%lld\n",
              static_cast<long long>(dataset.train_size()),
              static_cast<long long>(dataset.test_size()),
              static_cast<long long>(dataset.classes()),
              static_cast<long long>(dataset.resolution()),
              static_cast<long long>(dataset.resolution()));

  // 2. The baseline: small batch, plain momentum SGD, poly LR decay.
  core::RecipeConfig baseline =
      proxy.recipe(proxy.base_batch, core::LrRule::kLinearWarmup);
  baseline.verbose = true;
  std::printf("\n== baseline: batch %lld, %s ==\n",
              static_cast<long long>(baseline.global_batch),
              core::to_string(baseline.rule));
  const auto base_res =
      core::run_recipe(proxy.alexnet_factory(), baseline, dataset);

  // 3. The large-batch run: 16x the batch, LARS + warmup, same epochs.
  core::RecipeConfig large =
      proxy.recipe(proxy.base_batch * 16, core::LrRule::kLars);
  large.verbose = true;
  std::printf("\n== large batch: batch %lld, %s ==\n",
              static_cast<long long>(large.global_batch),
              core::to_string(large.rule));
  const auto large_res =
      core::run_recipe(proxy.alexnet_factory(), large, dataset);

  std::printf("\nbaseline  (batch %4lld): best test accuracy %.1f%%\n",
              static_cast<long long>(baseline.global_batch),
              100 * base_res.best_test_acc);
  std::printf("LARS 16x  (batch %4lld): best test accuracy %.1f%%\n",
              static_cast<long long>(large.global_batch),
              100 * large_res.best_test_acc);
  std::printf("\nSame epochs, 16x fewer optimizer steps, same accuracy — the\n"
              "large batch can now be spread over 16x more workers.\n");
  return 0;
}
