#!/usr/bin/env bash
# Tier-2 ThreadSanitizer gate: rebuild the thread-heavy test binaries with
# MINSGD_SANITIZE=thread and run everything labeled tier2-tsan. The async
# collective engine adds a per-rank comm worker thread to the SimCluster
# rank threads, and each rank now drives its own ComputeContext worker
# pool (nested parallelism), so test_comm / test_train / test_overlap /
# test_context / test_determinism must stay TSan-clean for the overlap and
# intra-op paths to be trusted. test_elastic joins the gate: the elastic
# coordinator's rendezvous/watchdog and communicator re-forms across
# generations add cross-thread handoffs that must also be race-free.
# test_obs carries the flight recorder's seqlock: concurrent writers racing
# a snapshot reader must be exact under TSan, not just in practice.
# test_gemm/test_conv cover the packed-panel kernels' per-chunk scratch;
# test_plan covers planned forward/backward, where many layers share one
# arena block and any cross-chunk overlap would be a real race.
#
# Usage: scripts/tsan_tier2.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMINSGD_SANITIZE=thread

cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target test_comm test_train test_overlap test_context test_determinism \
           test_elastic test_obs test_gemm test_conv test_plan

# TSan findings must fail the gate, not just print.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 exitcode=66}"

ctest --test-dir "$BUILD_DIR" -L tier2-tsan --output-on-failure
echo "tier2-tsan: all labeled suites TSan-clean"
