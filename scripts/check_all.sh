#!/usr/bin/env bash
# check_all.sh — the full verification matrix in one command:
#
#   lint         tools/lint/minsgd_lint.py over src/ tests/ bench/ examples/
#                plus its fixture self-test
#   analyze      tools/trace/analyze.py --self-test: the offline postmortem
#                analyzer against its synthetic 4-rank timeline (join,
#                straggler attribution, exposed/overlapped split)
#   build        default (RelWithDebInfo) configure + build
#   tier1        full ctest suite in the default build
#   bench-memplan  the memory-plan ablation (bench/bench_memplan): peak RSS
#                and img/s with the execution plan on vs off over a batch
#                sweep; writes bench_results/memplan.{csv,json}. Runs in
#                the default build so a plan regression (RSS or throughput)
#                shows up in the same invocation as the correctness gates
#   asan-ubsan   rebuild with MINSGD_SANITIZE=address,undefined
#                (-fno-sanitize-recover=all, no suppression files) and run
#                the full tier-1 suite under it — includes the elastic
#                membership suite (test_elastic), whose fault-injected
#                shrink->grow->shrink soak exercises checkpoint bytes on
#                the wire and reconfiguration retries under ASan/UBSan.
#                The kernel oracle trials (test_gemm, test_conv) then run a
#                second time with MINSGD_KERNEL_ISA=portable so the packed
#                reference path — not just the dispatched SIMD path — gets
#                sanitizer coverage of its panel-packing scratch
#   tier2-tsan   scripts/tsan_tier2.sh: thread-heavy suites under
#                MINSGD_SANITIZE=thread (ctest -L tier2-tsan); test_elastic
#                runs here too — the coordinator's rendezvous/watchdog and
#                the overlap comm worker across generation changes must be
#                TSan-clean
#
# Every stage runs even if an earlier one fails (so one invocation reports
# the whole matrix); the exit code is non-zero if any stage failed.
#
# Usage: scripts/check_all.sh [--skip-tsan] [--skip-asan]
set -u

cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    *) echo "usage: $0 [--skip-tsan] [--skip-asan]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc)"
declare -a STAGE_NAMES=()
declare -a STAGE_RESULTS=()

run_stage() {
  local name="$1"
  shift
  echo
  echo "=== stage: $name ==="
  if "$@"; then
    STAGE_NAMES+=("$name"); STAGE_RESULTS+=("pass")
    return 0
  else
    STAGE_NAMES+=("$name"); STAGE_RESULTS+=("FAIL")
    return 1
  fi
}

skip_stage() {
  STAGE_NAMES+=("$1"); STAGE_RESULTS+=("skipped")
}

lint_stage() {
  python3 tools/lint/minsgd_lint.py src tests bench examples &&
    python3 tools/lint/minsgd_lint.py --self-test
}

# Cross-TU semantic analysis: fixture self-test first (proves every check
# still fires), then the five whole-program checks over the real tree.
# Findings land in analyze_results/findings.json as well as on stdout.
analyze_stage() {
  python3 tools/analyze/analyze.py --self-test &&
    python3 tools/analyze/analyze.py
}

trace_analyze_stage() {
  python3 tools/trace/analyze.py --self-test
}

build_stage() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
    cmake --build build -j"$JOBS"
}

tier1_stage() {
  ctest --test-dir build -j"$JOBS" --output-on-failure
}

bench_memplan_stage() {
  cmake --build build -j"$JOBS" --target bench_memplan &&
    (cd build && ./bench/bench_memplan)
}

asan_ubsan_stage() {
  # MINSGD_DCHECK=ON arms the debug invariant layer (tensor bounds, layer
  # contracts) in the same run that arms ASan+UBSan.
  cmake -B build-asan-ubsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMINSGD_SANITIZE=address,undefined \
    -DMINSGD_DCHECK=ON &&
    cmake --build build-asan-ubsan -j"$JOBS" &&
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ctest --test-dir build-asan-ubsan -j"$JOBS" --output-on-failure &&
    # Kernel oracle trials again with the ISA pinned to the portable
    # reference kernel: the dispatched run above covers the SIMD
    # microkernels, this one covers the scalar reference and the shared
    # pack/drive layer under ASan/UBSan.
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    MINSGD_KERNEL_ISA=portable \
    ctest --test-dir build-asan-ubsan -j"$JOBS" --output-on-failure \
      -R '^(test_gemm|test_conv)$'
}

tsan_stage() {
  scripts/tsan_tier2.sh
}

FAILED=0
run_stage "lint" lint_stage || FAILED=1
run_stage "analyze" analyze_stage || FAILED=1
run_stage "trace-analyze" trace_analyze_stage || FAILED=1
if run_stage "build" build_stage; then
  run_stage "tier1" tier1_stage || FAILED=1
  run_stage "bench-memplan" bench_memplan_stage || FAILED=1
else
  FAILED=1
  skip_stage "tier1"
  skip_stage "bench-memplan"
fi
if [ "$SKIP_ASAN" -eq 1 ]; then
  skip_stage "asan-ubsan"
else
  run_stage "asan-ubsan" asan_ubsan_stage || FAILED=1
fi
if [ "$SKIP_TSAN" -eq 1 ]; then
  skip_stage "tier2-tsan"
else
  run_stage "tier2-tsan" tsan_stage || FAILED=1
fi

echo
echo "=== check_all summary ==="
for i in "${!STAGE_NAMES[@]}"; do
  printf '  %-12s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
done
if [ "$FAILED" -ne 0 ]; then
  echo "check_all: FAILED"
  exit 1
fi
echo "check_all: all stages passed"
