# Empty dependencies file for lars_inspector.
# This may be replaced when dependencies are built.
