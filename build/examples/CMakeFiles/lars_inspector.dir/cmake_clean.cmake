file(REMOVE_RECURSE
  "CMakeFiles/lars_inspector.dir/lars_inspector.cpp.o"
  "CMakeFiles/lars_inspector.dir/lars_inspector.cpp.o.d"
  "lars_inspector"
  "lars_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lars_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
