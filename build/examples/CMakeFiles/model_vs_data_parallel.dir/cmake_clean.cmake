file(REMOVE_RECURSE
  "CMakeFiles/model_vs_data_parallel.dir/model_vs_data_parallel.cpp.o"
  "CMakeFiles/model_vs_data_parallel.dir/model_vs_data_parallel.cpp.o.d"
  "model_vs_data_parallel"
  "model_vs_data_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_vs_data_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
