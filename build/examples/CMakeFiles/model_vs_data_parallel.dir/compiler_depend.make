# Empty compiler generated dependencies file for model_vs_data_parallel.
# This may be replaced when dependencies are built.
