
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fault_tolerance.cpp" "examples/CMakeFiles/fault_tolerance.dir/fault_tolerance.cpp.o" "gcc" "examples/CMakeFiles/fault_tolerance.dir/fault_tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/minsgd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/minsgd_train.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/minsgd_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/minsgd_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/minsgd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/minsgd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/minsgd_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/minsgd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
