# Empty compiler generated dependencies file for sync_vs_async.
# This may be replaced when dependencies are built.
