file(REMOVE_RECURSE
  "CMakeFiles/sync_vs_async.dir/sync_vs_async.cpp.o"
  "CMakeFiles/sync_vs_async.dir/sync_vs_async.cpp.o.d"
  "sync_vs_async"
  "sync_vs_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_vs_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
