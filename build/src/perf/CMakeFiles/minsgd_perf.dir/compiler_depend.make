# Empty compiler generated dependencies file for minsgd_perf.
# This may be replaced when dependencies are built.
