file(REMOVE_RECURSE
  "CMakeFiles/minsgd_perf.dir/cost_model.cpp.o"
  "CMakeFiles/minsgd_perf.dir/cost_model.cpp.o.d"
  "CMakeFiles/minsgd_perf.dir/energy.cpp.o"
  "CMakeFiles/minsgd_perf.dir/energy.cpp.o.d"
  "CMakeFiles/minsgd_perf.dir/specs.cpp.o"
  "CMakeFiles/minsgd_perf.dir/specs.cpp.o.d"
  "libminsgd_perf.a"
  "libminsgd_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsgd_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
