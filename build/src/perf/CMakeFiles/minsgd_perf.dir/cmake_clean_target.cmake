file(REMOVE_RECURSE
  "libminsgd_perf.a"
)
