file(REMOVE_RECURSE
  "CMakeFiles/minsgd_train.dir/async_trainer.cpp.o"
  "CMakeFiles/minsgd_train.dir/async_trainer.cpp.o.d"
  "CMakeFiles/minsgd_train.dir/checkpoint.cpp.o"
  "CMakeFiles/minsgd_train.dir/checkpoint.cpp.o.d"
  "CMakeFiles/minsgd_train.dir/easgd.cpp.o"
  "CMakeFiles/minsgd_train.dir/easgd.cpp.o.d"
  "CMakeFiles/minsgd_train.dir/fault_tolerant.cpp.o"
  "CMakeFiles/minsgd_train.dir/fault_tolerant.cpp.o.d"
  "CMakeFiles/minsgd_train.dir/metrics.cpp.o"
  "CMakeFiles/minsgd_train.dir/metrics.cpp.o.d"
  "CMakeFiles/minsgd_train.dir/trainer.cpp.o"
  "CMakeFiles/minsgd_train.dir/trainer.cpp.o.d"
  "libminsgd_train.a"
  "libminsgd_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsgd_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
