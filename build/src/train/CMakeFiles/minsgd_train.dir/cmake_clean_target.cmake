file(REMOVE_RECURSE
  "libminsgd_train.a"
)
