# Empty dependencies file for minsgd_train.
# This may be replaced when dependencies are built.
