
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/async_trainer.cpp" "src/train/CMakeFiles/minsgd_train.dir/async_trainer.cpp.o" "gcc" "src/train/CMakeFiles/minsgd_train.dir/async_trainer.cpp.o.d"
  "/root/repo/src/train/checkpoint.cpp" "src/train/CMakeFiles/minsgd_train.dir/checkpoint.cpp.o" "gcc" "src/train/CMakeFiles/minsgd_train.dir/checkpoint.cpp.o.d"
  "/root/repo/src/train/easgd.cpp" "src/train/CMakeFiles/minsgd_train.dir/easgd.cpp.o" "gcc" "src/train/CMakeFiles/minsgd_train.dir/easgd.cpp.o.d"
  "/root/repo/src/train/fault_tolerant.cpp" "src/train/CMakeFiles/minsgd_train.dir/fault_tolerant.cpp.o" "gcc" "src/train/CMakeFiles/minsgd_train.dir/fault_tolerant.cpp.o.d"
  "/root/repo/src/train/metrics.cpp" "src/train/CMakeFiles/minsgd_train.dir/metrics.cpp.o" "gcc" "src/train/CMakeFiles/minsgd_train.dir/metrics.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/train/CMakeFiles/minsgd_train.dir/trainer.cpp.o" "gcc" "src/train/CMakeFiles/minsgd_train.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/minsgd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/minsgd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/minsgd_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/minsgd_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/minsgd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
