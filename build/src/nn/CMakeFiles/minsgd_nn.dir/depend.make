# Empty dependencies file for minsgd_nn.
# This may be replaced when dependencies are built.
