file(REMOVE_RECURSE
  "libminsgd_nn.a"
)
