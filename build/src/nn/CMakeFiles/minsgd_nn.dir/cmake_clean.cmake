file(REMOVE_RECURSE
  "CMakeFiles/minsgd_nn.dir/activation.cpp.o"
  "CMakeFiles/minsgd_nn.dir/activation.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/analysis.cpp.o"
  "CMakeFiles/minsgd_nn.dir/analysis.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/conv.cpp.o"
  "CMakeFiles/minsgd_nn.dir/conv.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/dropout.cpp.o"
  "CMakeFiles/minsgd_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/init.cpp.o"
  "CMakeFiles/minsgd_nn.dir/init.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/linear.cpp.o"
  "CMakeFiles/minsgd_nn.dir/linear.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/loss.cpp.o"
  "CMakeFiles/minsgd_nn.dir/loss.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/models.cpp.o"
  "CMakeFiles/minsgd_nn.dir/models.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/network.cpp.o"
  "CMakeFiles/minsgd_nn.dir/network.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/norm.cpp.o"
  "CMakeFiles/minsgd_nn.dir/norm.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/pool.cpp.o"
  "CMakeFiles/minsgd_nn.dir/pool.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/residual.cpp.o"
  "CMakeFiles/minsgd_nn.dir/residual.cpp.o.d"
  "CMakeFiles/minsgd_nn.dir/serialize.cpp.o"
  "CMakeFiles/minsgd_nn.dir/serialize.cpp.o.d"
  "libminsgd_nn.a"
  "libminsgd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsgd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
