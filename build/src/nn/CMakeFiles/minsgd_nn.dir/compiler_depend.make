# Empty compiler generated dependencies file for minsgd_nn.
# This may be replaced when dependencies are built.
