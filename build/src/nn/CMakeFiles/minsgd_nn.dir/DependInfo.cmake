
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/analysis.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/analysis.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/analysis.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/residual.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/minsgd_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/minsgd_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/minsgd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
