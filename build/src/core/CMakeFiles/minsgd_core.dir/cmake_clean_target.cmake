file(REMOVE_RECURSE
  "libminsgd_core.a"
)
