file(REMOVE_RECURSE
  "CMakeFiles/minsgd_core.dir/proxy.cpp.o"
  "CMakeFiles/minsgd_core.dir/proxy.cpp.o.d"
  "CMakeFiles/minsgd_core.dir/recipe.cpp.o"
  "CMakeFiles/minsgd_core.dir/recipe.cpp.o.d"
  "libminsgd_core.a"
  "libminsgd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsgd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
