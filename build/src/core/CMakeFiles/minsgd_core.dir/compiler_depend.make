# Empty compiler generated dependencies file for minsgd_core.
# This may be replaced when dependencies are built.
