file(REMOVE_RECURSE
  "CMakeFiles/minsgd_tensor.dir/gemm.cpp.o"
  "CMakeFiles/minsgd_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/minsgd_tensor.dir/ops.cpp.o"
  "CMakeFiles/minsgd_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/minsgd_tensor.dir/rng.cpp.o"
  "CMakeFiles/minsgd_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/minsgd_tensor.dir/tensor.cpp.o"
  "CMakeFiles/minsgd_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/minsgd_tensor.dir/threadpool.cpp.o"
  "CMakeFiles/minsgd_tensor.dir/threadpool.cpp.o.d"
  "libminsgd_tensor.a"
  "libminsgd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsgd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
