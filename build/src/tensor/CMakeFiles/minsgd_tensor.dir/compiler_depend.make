# Empty compiler generated dependencies file for minsgd_tensor.
# This may be replaced when dependencies are built.
