file(REMOVE_RECURSE
  "libminsgd_tensor.a"
)
