file(REMOVE_RECURSE
  "CMakeFiles/minsgd_data.dir/augment.cpp.o"
  "CMakeFiles/minsgd_data.dir/augment.cpp.o.d"
  "CMakeFiles/minsgd_data.dir/loader.cpp.o"
  "CMakeFiles/minsgd_data.dir/loader.cpp.o.d"
  "CMakeFiles/minsgd_data.dir/synthetic.cpp.o"
  "CMakeFiles/minsgd_data.dir/synthetic.cpp.o.d"
  "libminsgd_data.a"
  "libminsgd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsgd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
