# Empty compiler generated dependencies file for minsgd_data.
# This may be replaced when dependencies are built.
