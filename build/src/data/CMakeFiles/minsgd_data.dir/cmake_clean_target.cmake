file(REMOVE_RECURSE
  "libminsgd_data.a"
)
