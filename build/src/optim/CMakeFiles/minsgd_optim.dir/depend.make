# Empty dependencies file for minsgd_optim.
# This may be replaced when dependencies are built.
