file(REMOVE_RECURSE
  "libminsgd_optim.a"
)
