file(REMOVE_RECURSE
  "CMakeFiles/minsgd_optim.dir/lars.cpp.o"
  "CMakeFiles/minsgd_optim.dir/lars.cpp.o.d"
  "CMakeFiles/minsgd_optim.dir/optimizer.cpp.o"
  "CMakeFiles/minsgd_optim.dir/optimizer.cpp.o.d"
  "CMakeFiles/minsgd_optim.dir/schedule.cpp.o"
  "CMakeFiles/minsgd_optim.dir/schedule.cpp.o.d"
  "CMakeFiles/minsgd_optim.dir/sgd.cpp.o"
  "CMakeFiles/minsgd_optim.dir/sgd.cpp.o.d"
  "libminsgd_optim.a"
  "libminsgd_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsgd_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
