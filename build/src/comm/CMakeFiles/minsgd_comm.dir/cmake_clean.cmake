file(REMOVE_RECURSE
  "CMakeFiles/minsgd_comm.dir/cluster.cpp.o"
  "CMakeFiles/minsgd_comm.dir/cluster.cpp.o.d"
  "CMakeFiles/minsgd_comm.dir/communicator.cpp.o"
  "CMakeFiles/minsgd_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/minsgd_comm.dir/compress.cpp.o"
  "CMakeFiles/minsgd_comm.dir/compress.cpp.o.d"
  "CMakeFiles/minsgd_comm.dir/fault.cpp.o"
  "CMakeFiles/minsgd_comm.dir/fault.cpp.o.d"
  "CMakeFiles/minsgd_comm.dir/model_parallel.cpp.o"
  "CMakeFiles/minsgd_comm.dir/model_parallel.cpp.o.d"
  "libminsgd_comm.a"
  "libminsgd_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsgd_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
