# Empty dependencies file for minsgd_comm.
# This may be replaced when dependencies are built.
