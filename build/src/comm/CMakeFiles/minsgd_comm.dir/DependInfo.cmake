
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/cluster.cpp" "src/comm/CMakeFiles/minsgd_comm.dir/cluster.cpp.o" "gcc" "src/comm/CMakeFiles/minsgd_comm.dir/cluster.cpp.o.d"
  "/root/repo/src/comm/communicator.cpp" "src/comm/CMakeFiles/minsgd_comm.dir/communicator.cpp.o" "gcc" "src/comm/CMakeFiles/minsgd_comm.dir/communicator.cpp.o.d"
  "/root/repo/src/comm/compress.cpp" "src/comm/CMakeFiles/minsgd_comm.dir/compress.cpp.o" "gcc" "src/comm/CMakeFiles/minsgd_comm.dir/compress.cpp.o.d"
  "/root/repo/src/comm/fault.cpp" "src/comm/CMakeFiles/minsgd_comm.dir/fault.cpp.o" "gcc" "src/comm/CMakeFiles/minsgd_comm.dir/fault.cpp.o.d"
  "/root/repo/src/comm/model_parallel.cpp" "src/comm/CMakeFiles/minsgd_comm.dir/model_parallel.cpp.o" "gcc" "src/comm/CMakeFiles/minsgd_comm.dir/model_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/minsgd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/minsgd_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
