file(REMOVE_RECURSE
  "libminsgd_comm.a"
)
