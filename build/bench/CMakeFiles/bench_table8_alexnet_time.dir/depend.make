# Empty dependencies file for bench_table8_alexnet_time.
# This may be replaced when dependencies are built.
