file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_alexnet_time.dir/bench_table8_alexnet_time.cpp.o"
  "CMakeFiles/bench_table8_alexnet_time.dir/bench_table8_alexnet_time.cpp.o.d"
  "bench_table8_alexnet_time"
  "bench_table8_alexnet_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_alexnet_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
