# Empty dependencies file for bench_fig8_9_10_comm_scaling.
# This may be replaced when dependencies are built.
