file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_alexnet_lars.dir/bench_table7_alexnet_lars.cpp.o"
  "CMakeFiles/bench_table7_alexnet_lars.dir/bench_table7_alexnet_lars.cpp.o.d"
  "bench_table7_alexnet_lars"
  "bench_table7_alexnet_lars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_alexnet_lars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
