# Empty dependencies file for bench_table7_alexnet_lars.
# This may be replaced when dependencies are built.
