file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_recipe.dir/bench_ablation_recipe.cpp.o"
  "CMakeFiles/bench_ablation_recipe.dir/bench_ablation_recipe.cpp.o.d"
  "bench_ablation_recipe"
  "bench_ablation_recipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_recipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
