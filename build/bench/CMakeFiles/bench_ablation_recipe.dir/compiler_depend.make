# Empty compiler generated dependencies file for bench_ablation_recipe.
# This may be replaced when dependencies are built.
