file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_priorart.dir/bench_table4_priorart.cpp.o"
  "CMakeFiles/bench_table4_priorart.dir/bench_table4_priorart.cpp.o.d"
  "bench_table4_priorart"
  "bench_table4_priorart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_priorart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
