file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_baselines.dir/bench_table3_baselines.cpp.o"
  "CMakeFiles/bench_table3_baselines.dir/bench_table3_baselines.cpp.o.d"
  "bench_table3_baselines"
  "bench_table3_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
