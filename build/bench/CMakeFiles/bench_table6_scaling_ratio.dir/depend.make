# Empty dependencies file for bench_table6_scaling_ratio.
# This may be replaced when dependencies are built.
