file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_scaling_ratio.dir/bench_table6_scaling_ratio.cpp.o"
  "CMakeFiles/bench_table6_scaling_ratio.dir/bench_table6_scaling_ratio.cpp.o.d"
  "bench_table6_scaling_ratio"
  "bench_table6_scaling_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_scaling_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
