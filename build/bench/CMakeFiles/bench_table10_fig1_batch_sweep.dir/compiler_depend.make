# Empty compiler generated dependencies file for bench_table10_fig1_batch_sweep.
# This may be replaced when dependencies are built.
