file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_allreduce.dir/bench_ablation_allreduce.cpp.o"
  "CMakeFiles/bench_ablation_allreduce.dir/bench_ablation_allreduce.cpp.o.d"
  "bench_ablation_allreduce"
  "bench_ablation_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
