file(REMOVE_RECURSE
  "CMakeFiles/bench_augmentation.dir/bench_augmentation.cpp.o"
  "CMakeFiles/bench_augmentation.dir/bench_augmentation.cpp.o.d"
  "bench_augmentation"
  "bench_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
