# Empty dependencies file for bench_table9_resnet_time.
# This may be replaced when dependencies are built.
