file(REMOVE_RECURSE
  "CMakeFiles/test_recipe.dir/test_recipe.cpp.o"
  "CMakeFiles/test_recipe.dir/test_recipe.cpp.o.d"
  "test_recipe"
  "test_recipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
