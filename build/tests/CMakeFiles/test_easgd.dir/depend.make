# Empty dependencies file for test_easgd.
# This may be replaced when dependencies are built.
