file(REMOVE_RECURSE
  "CMakeFiles/test_easgd.dir/test_easgd.cpp.o"
  "CMakeFiles/test_easgd.dir/test_easgd.cpp.o.d"
  "test_easgd"
  "test_easgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_easgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
