file(REMOVE_RECURSE
  "CMakeFiles/test_integration_lars.dir/test_integration_lars.cpp.o"
  "CMakeFiles/test_integration_lars.dir/test_integration_lars.cpp.o.d"
  "test_integration_lars"
  "test_integration_lars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_lars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
