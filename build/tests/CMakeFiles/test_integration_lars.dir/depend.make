# Empty dependencies file for test_integration_lars.
# This may be replaced when dependencies are built.
