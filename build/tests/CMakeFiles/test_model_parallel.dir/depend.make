# Empty dependencies file for test_model_parallel.
# This may be replaced when dependencies are built.
