file(REMOVE_RECURSE
  "CMakeFiles/test_model_parallel.dir/test_model_parallel.cpp.o"
  "CMakeFiles/test_model_parallel.dir/test_model_parallel.cpp.o.d"
  "test_model_parallel"
  "test_model_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
